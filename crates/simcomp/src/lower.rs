//! Lowering from the checked AST to the three-address [`crate::ir`].
//!
//! The lowering is semantics-preserving for the common C core (arithmetic,
//! control flow, arrays, scalars, calls) and *shape-preserving* for the long
//! tail (aggregates through pointers, complex values): unhandled constructs
//! lower to `Undef` reads while still contributing structure — which is what
//! the coverage map and the bug oracle consume.

use crate::coverage::feature_hash;
use crate::ir::*;
use metamut_lang::ast as c;
use metamut_lang::fxhash::{FxHashMap, FxHashSet};
use metamut_lang::sema::SemaResult;

/// Result of lowering a translation unit.
#[derive(Debug)]
pub struct Lowered {
    /// The IR module.
    pub module: Module,
    /// Structural features observed while lowering (IR-generation stage
    /// coverage).
    pub features: Vec<u64>,
}

/// Result of lowering one external declaration in isolation.
///
/// The whole-unit [`lower`] is exactly the concatenation of per-declaration
/// results in source order, which is what lets the incremental compiler
/// cache lowering per declaration and replay only the edited one.
#[derive(Debug, Clone)]
pub struct LoweredDecl {
    /// Globals the declaration introduces (from a `Vars` group).
    pub globals: Vec<(String, Option<i64>)>,
    /// The lowered body, when the declaration is a function definition.
    pub function: Option<IrFunction>,
    /// IR-generation features this declaration contributed.
    pub features: Vec<u64>,
}

/// Lowers a single external declaration against `sema`.
///
/// Lowering consults only the *final* semantic tables (`decl_type`,
/// `expr_type`, `functions`, `enum_consts`), never other declarations'
/// IR — so per-declaration results compose into [`lower`]'s output by plain
/// concatenation.
pub fn lower_decl(d: &c::ExternalDecl, sema: &SemaResult) -> LoweredDecl {
    let mut lw = Lowering {
        sema,
        module: Module::default(),
        features: Vec::new(),
    };
    let mut function = None;
    match d {
        c::ExternalDecl::Vars(g) => {
            for v in &g.vars {
                let init = match &v.init {
                    Some(c::Initializer::Expr(e)) => const_int_of(e),
                    _ => None,
                };
                lw.module.globals.push((v.name.clone(), init));
                lw.feature(&[1, v.name.len() as u64]);
            }
        }
        c::ExternalDecl::Function(f) if f.is_definition() => {
            function = Some(lw.lower_function(f));
        }
        _ => {}
    }
    LoweredDecl {
        globals: lw.module.globals,
        function,
        features: lw.features,
    }
}

/// Lowers a checked AST to IR.
pub fn lower(ast: &c::Ast, sema: &SemaResult) -> Lowered {
    let mut module = Module::default();
    let mut features = Vec::new();
    for d in &ast.unit.decls {
        let mut ld = lower_decl(d, sema);
        module.globals.append(&mut ld.globals);
        if let Some(f) = ld.function {
            module.functions.push(f);
        }
        features.extend(ld.features);
    }
    Lowered { module, features }
}

fn const_int_of(e: &c::Expr) -> Option<i64> {
    match &e.kind {
        c::ExprKind::IntLit { value, .. } => Some(*value as i64),
        c::ExprKind::CharLit { value } => Some(*value),
        c::ExprKind::Unary {
            op: c::UnaryOp::Minus,
            operand,
        } => const_int_of(operand).map(|v| -v),
        c::ExprKind::Paren(inner) => const_int_of(inner),
        _ => None,
    }
}

struct Lowering<'a> {
    sema: &'a SemaResult,
    module: Module,
    features: Vec<u64>,
}

impl Lowering<'_> {
    fn feature(&mut self, parts: &[u64]) {
        self.features.push(feature_hash(parts));
    }

    fn lower_function(&mut self, f: &c::FunctionDef) -> IrFunction {
        let mut fx = FnLowering {
            sema: self.sema,
            func: IrFunction {
                name: f.name.clone(),
                params: f
                    .params
                    .iter()
                    .map(|p| p.name.clone().unwrap_or_else(|| "_".into()))
                    .collect(),
                returns_value: !f.ret_ty.is_void(),
                blocks: Vec::new(),
                temp_count: 0,
                locals: Vec::new(),
            },
            features: Vec::new(),
            cur: BlockId(0),
            scopes: vec![FxHashMap::default()],
            volatile_slots: Default::default(),
            loop_stack: Vec::new(),
            label_blocks: FxHashMap::default(),
            next_slot: 0,
        };
        fx.new_block(); // entry
        for p in &f.params {
            if let Some(name) = &p.name {
                fx.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), name.clone());
                fx.func.locals.push(name.clone());
            }
        }
        if let Some(body) = &f.body {
            fx.pre_scan_labels(body);
            fx.lower_stmt(body);
        }
        // Fall-through return.
        let ret = if fx.func.returns_value {
            Terminator::Return(Some(Value::Int(0)))
        } else {
            Terminator::Return(None)
        };
        fx.terminate(ret);
        // CFG-edge features.
        let edge_feats: Vec<[u64; 3]> = fx
            .func
            .blocks
            .iter()
            .flat_map(|b| {
                b.term.successors().into_iter().map(move |s| {
                    [
                        2u64,
                        b.insts.len() as u64,
                        (s.0 as i64 - b.id.0 as i64).unsigned_abs(),
                    ]
                })
            })
            .collect();
        for ef in edge_feats {
            fx.features.push(feature_hash(&ef));
        }
        self.features.extend(fx.features);
        fx.func
    }
}

struct FnLowering<'a> {
    sema: &'a SemaResult,
    func: IrFunction,
    features: Vec<u64>,
    cur: BlockId,
    /// name → slot mapping per lexical scope.
    scopes: Vec<FxHashMap<String, String>>,
    volatile_slots: FxHashSet<String>,
    /// (continue target, break target)
    loop_stack: Vec<(BlockId, BlockId)>,
    label_blocks: FxHashMap<String, BlockId>,
    next_slot: u32,
}

impl FnLowering<'_> {
    fn feature(&mut self, parts: &[u64]) {
        self.features.push(feature_hash(parts));
    }

    fn new_temp(&mut self) -> Temp {
        let t = Temp(self.func.temp_count);
        self.func.temp_count += 1;
        t
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            id,
            insts: Vec::new(),
            term: Terminator::Unreachable,
        });
        id
    }

    fn emit(&mut self, inst: Inst) {
        let code = match &inst {
            Inst::Bin { op, a, b, .. } => [10, op.code(), operand_code(a), operand_code(b)],
            Inst::Un { op, a, .. } => [11, *op as u64, operand_code(a), 0],
            Inst::Load { volatile, .. } => [12, u64::from(*volatile), 0, 0],
            Inst::Store {
                volatile, value, ..
            } => [13, u64::from(*volatile), operand_code(value), 0],
            Inst::LoadIdx { index, .. } => [14, operand_code(index), 0, 0],
            Inst::StoreIdx { index, value, .. } => {
                [15, operand_code(index), operand_code(value), 0]
            }
            Inst::AddrOf { .. } => [16, 0, 0, 0],
            Inst::LoadPtr { .. } => [17, 0, 0, 0],
            Inst::StorePtr { .. } => [18, 0, 0, 0],
            Inst::Call { dst, args, .. } => [19, u64::from(dst.is_some()), args.len() as u64, 0],
        };
        self.feature(&code);
        let cur = self.cur;
        self.func.blocks[cur.0 as usize].insts.push(inst);
    }

    /// Sets the current block's terminator if it is still open, then leaves
    /// the block finished.
    fn terminate(&mut self, term: Terminator) {
        let cur = self.cur;
        let b = &mut self.func.blocks[cur.0 as usize];
        if matches!(b.term, Terminator::Unreachable) {
            b.term = term;
        }
    }

    /// Starts a new block and makes it current (the caller has arranged for
    /// control to reach it).
    fn switch_to(&mut self, id: BlockId) {
        self.cur = id;
    }

    fn fresh_slot(&mut self, name: &str) -> String {
        let slot = format!("{name}.{}", self.next_slot);
        self.next_slot += 1;
        self.func.locals.push(slot.clone());
        slot
    }

    fn resolve(&self, name: &str) -> Option<String> {
        for scope in self.scopes.iter().rev() {
            if let Some(slot) = scope.get(name) {
                return Some(slot.clone());
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Labels / goto
    // ------------------------------------------------------------------

    fn pre_scan_labels(&mut self, body: &c::Stmt) {
        struct V<'a, 'b> {
            fx: &'a mut FnLowering<'b>,
        }
        impl metamut_lang::visit::Visitor for V<'_, '_> {
            fn visit_stmt(&mut self, s: &c::Stmt) {
                if let c::StmtKind::Label { name, .. } = &s.kind {
                    let bb = self.fx.new_block();
                    self.fx.label_blocks.insert(name.clone(), bb);
                }
                metamut_lang::visit::walk_stmt(self, s);
            }
        }
        let mut v = V { fx: self };
        metamut_lang::visit::Visitor::visit_stmt(&mut v, body);
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn lower_stmt(&mut self, s: &c::Stmt) {
        match &s.kind {
            c::StmtKind::Compound(items) => {
                self.scopes.push(FxHashMap::default());
                for item in items {
                    match item {
                        c::BlockItem::Decl(g) => self.lower_decl_group(g),
                        c::BlockItem::Stmt(st) => self.lower_stmt(st),
                    }
                }
                self.scopes.pop();
            }
            c::StmtKind::Expr(e) => {
                self.lower_expr(e);
            }
            c::StmtKind::Null => {}
            c::StmtKind::If {
                cond,
                then_stmt,
                else_stmt,
            } => {
                let cv = self.lower_expr(cond);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: cv,
                    then_bb,
                    else_bb,
                });
                self.switch_to(then_bb);
                self.lower_stmt(then_stmt);
                self.terminate(Terminator::Jump(join));
                self.switch_to(else_bb);
                if let Some(es) = else_stmt {
                    self.lower_stmt(es);
                }
                self.terminate(Terminator::Jump(join));
                self.switch_to(join);
                self.feature(&[30, u64::from(else_stmt.is_some())]);
            }
            c::StmtKind::While { cond, body } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(header));
                self.switch_to(header);
                let cv = self.lower_expr(cond);
                self.terminate(Terminator::Branch {
                    cond: cv,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.loop_stack.push((header, exit));
                self.switch_to(body_bb);
                self.lower_stmt(body);
                self.terminate(Terminator::Jump(header));
                self.loop_stack.pop();
                self.switch_to(exit);
                self.feature(&[31]);
            }
            c::StmtKind::DoWhile { body, cond } => {
                let body_bb = self.new_block();
                let latch = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(body_bb));
                self.loop_stack.push((latch, exit));
                self.switch_to(body_bb);
                self.lower_stmt(body);
                self.terminate(Terminator::Jump(latch));
                self.loop_stack.pop();
                self.switch_to(latch);
                let cv = self.lower_expr(cond);
                self.terminate(Terminator::Branch {
                    cond: cv,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.switch_to(exit);
                self.feature(&[32]);
            }
            c::StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(FxHashMap::default());
                if let Some(init) = init {
                    match init.as_ref() {
                        c::ForInit::Decl(g) => self.lower_decl_group(g),
                        c::ForInit::Expr(e) => {
                            self.lower_expr(e);
                        }
                    }
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let latch = self.new_block();
                let exit = self.new_block();
                self.terminate(Terminator::Jump(header));
                self.switch_to(header);
                let cv = match cond {
                    Some(c) => self.lower_expr(c),
                    None => Value::Int(1),
                };
                self.terminate(Terminator::Branch {
                    cond: cv,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.loop_stack.push((latch, exit));
                self.switch_to(body_bb);
                self.lower_stmt(body);
                self.terminate(Terminator::Jump(latch));
                self.loop_stack.pop();
                self.switch_to(latch);
                if let Some(st) = step {
                    self.lower_expr(st);
                }
                self.terminate(Terminator::Jump(header));
                self.switch_to(exit);
                self.feature(&[33, u64::from(cond.is_some()), u64::from(step.is_some())]);
            }
            c::StmtKind::Switch { cond, body } => {
                let scrut = self.lower_expr(cond);
                // Collect immediate case/default labels in the body.
                let mut plan = SwitchPlan::default();
                collect_switch_labels(body, &mut plan);
                let exit = self.new_block();
                let mut case_blocks = Vec::new();
                for v in &plan.cases {
                    case_blocks.push((*v, self.new_block()));
                }
                let default_bb = if plan.has_default {
                    self.new_block()
                } else {
                    exit
                };
                self.terminate(Terminator::Switch {
                    value: scrut,
                    cases: case_blocks.clone(),
                    default: default_bb,
                });
                self.loop_stack.push((exit, exit)); // break targets exit
                let mut ctx = SwitchLowerCtx {
                    case_blocks: case_blocks.into_iter().collect(),
                    default_bb: if plan.has_default {
                        Some(default_bb)
                    } else {
                        None
                    },
                };
                // Lower the body linearly; labels switch blocks.
                let dead = self.new_block(); // body head unreachable unless labeled
                self.switch_to(dead);
                self.lower_switch_body(body, &mut ctx);
                self.terminate(Terminator::Jump(exit));
                self.loop_stack.pop();
                self.switch_to(exit);
                self.feature(&[34, plan.cases.len() as u64, u64::from(plan.has_default)]);
            }
            c::StmtKind::Case { .. } | c::StmtKind::Default { .. } => {
                // Handled by lower_switch_body; stray labels lower their
                // sub-statement in place.
                if let c::StmtKind::Case { stmt, .. } | c::StmtKind::Default { stmt } = &s.kind {
                    self.lower_stmt(stmt);
                }
            }
            c::StmtKind::Label { name, stmt, .. } => {
                let bb = self.label_blocks[name];
                self.terminate(Terminator::Jump(bb));
                self.switch_to(bb);
                self.lower_stmt(stmt);
                self.feature(&[35]);
            }
            c::StmtKind::Goto { name, .. } => {
                if let Some(&bb) = self.label_blocks.get(name) {
                    self.terminate(Terminator::Jump(bb));
                    let dead = self.new_block();
                    self.switch_to(dead);
                }
                self.feature(&[36]);
            }
            c::StmtKind::Break => {
                if let Some(&(_, exit)) = self.loop_stack.last() {
                    self.terminate(Terminator::Jump(exit));
                    let dead = self.new_block();
                    self.switch_to(dead);
                }
            }
            c::StmtKind::Continue => {
                if let Some(&(cont, _)) = self.loop_stack.last() {
                    self.terminate(Terminator::Jump(cont));
                    let dead = self.new_block();
                    self.switch_to(dead);
                }
            }
            c::StmtKind::Return(value) => {
                let v = value.as_ref().map(|e| self.lower_expr(e));
                self.terminate(Terminator::Return(v));
                let dead = self.new_block();
                self.switch_to(dead);
                self.feature(&[37, u64::from(value.is_some())]);
            }
        }
    }

    fn lower_switch_body(&mut self, s: &c::Stmt, ctx: &mut SwitchLowerCtx) {
        match &s.kind {
            c::StmtKind::Compound(items) => {
                self.scopes.push(FxHashMap::default());
                for item in items {
                    match item {
                        c::BlockItem::Decl(g) => self.lower_decl_group(g),
                        c::BlockItem::Stmt(st) => self.lower_switch_body(st, ctx),
                    }
                }
                self.scopes.pop();
            }
            c::StmtKind::Case { expr, stmt } => {
                let key = const_int_of(expr)
                    .or_else(|| eval_via_sema(expr))
                    .unwrap_or(0);
                if let Some(&bb) = ctx.case_blocks.get(&key) {
                    // Fallthrough from the previous arm.
                    self.terminate(Terminator::Jump(bb));
                    self.switch_to(bb);
                }
                self.lower_switch_body(stmt, ctx);
            }
            c::StmtKind::Default { stmt } => {
                if let Some(bb) = ctx.default_bb {
                    self.terminate(Terminator::Jump(bb));
                    self.switch_to(bb);
                }
                self.lower_switch_body(stmt, ctx);
            }
            _ => self.lower_stmt(s),
        }
    }

    fn lower_decl_group(&mut self, g: &c::DeclGroup) {
        for v in &g.vars {
            let slot = self.fresh_slot(&v.name);
            self.scopes
                .last_mut()
                .expect("scope")
                .insert(v.name.clone(), slot.clone());
            let is_volatile = self
                .sema
                .decl_type(v.id)
                .map(|t| t.quals.is_volatile)
                .unwrap_or(false);
            if is_volatile {
                self.volatile_slots.insert(slot.clone());
            }
            match &v.init {
                Some(c::Initializer::Expr(e)) => {
                    let val = self.lower_expr(e);
                    self.emit(Inst::Store {
                        slot,
                        value: val,
                        volatile: is_volatile,
                    });
                }
                Some(c::Initializer::List { items, .. }) => {
                    for (i, item) in items.iter().enumerate() {
                        if let c::Initializer::Expr(e) = item {
                            let val = self.lower_expr(e);
                            self.emit(Inst::StoreIdx {
                                base: slot.clone(),
                                index: Value::Int(i as i64),
                                value: val,
                            });
                        }
                    }
                }
                None => {}
            }
            self.feature(&[40, u64::from(v.init.is_some())]);
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn lower_expr(&mut self, e: &c::Expr) -> Value {
        use c::ExprKind as K;
        match &e.kind {
            K::IntLit { value, .. } => Value::Int(*value as i64),
            K::CharLit { value } => Value::Int(*value),
            K::FloatLit { value, .. } => Value::Float(*value),
            K::StrLit { value } => Value::Str(value.clone()),
            K::Ident(name) => {
                if let Some(v) = self.sema.enum_consts.get(name) {
                    return Value::Int(*v);
                }
                match self.resolve_or_global(name) {
                    Some(slot) => {
                        // Arrays decay to their address: keep the slot as the
                        // value so passes can reason about aliasing.
                        let is_array = self
                            .sema
                            .expr_type(e.id)
                            .map(|t| t.ty.is_array())
                            .unwrap_or(false);
                        if is_array {
                            return Value::Slot(slot);
                        }
                        let dst = self.new_temp();
                        let volatile = self.volatile_slots.contains(&slot);
                        self.emit(Inst::Load {
                            dst,
                            slot,
                            volatile,
                        });
                        Value::Temp(dst)
                    }
                    None => Value::Slot(name.clone()), // function name etc.
                }
            }
            K::Paren(inner) => self.lower_expr(inner),
            K::Unary { op, operand } => self.lower_unary(*op, operand),
            K::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            K::Assign { op, lhs, rhs } => self.lower_assign(*op, lhs, rhs),
            K::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                let cv = self.lower_expr(cond);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                let result_slot = self.fresh_slot("ternary");
                self.terminate(Terminator::Branch {
                    cond: cv,
                    then_bb,
                    else_bb,
                });
                self.switch_to(then_bb);
                let tv = self.lower_expr(then_expr);
                self.emit(Inst::Store {
                    slot: result_slot.clone(),
                    value: tv,
                    volatile: false,
                });
                self.terminate(Terminator::Jump(join));
                self.switch_to(else_bb);
                let ev = self.lower_expr(else_expr);
                self.emit(Inst::Store {
                    slot: result_slot.clone(),
                    value: ev,
                    volatile: false,
                });
                self.terminate(Terminator::Jump(join));
                self.switch_to(join);
                let dst = self.new_temp();
                self.emit(Inst::Load {
                    dst,
                    slot: result_slot,
                    volatile: false,
                });
                Value::Temp(dst)
            }
            K::Call { callee, args } => {
                let name = match &callee.unparenthesized().kind {
                    K::Ident(n) => n.clone(),
                    _ => {
                        self.lower_expr(callee);
                        "indirect".to_string()
                    }
                };
                let arg_vals: Vec<Value> = args.iter().map(|a| self.lower_expr(a)).collect();
                let returns_value = self
                    .sema
                    .functions
                    .get(&name)
                    .map(|f| !f.ret.ty.is_void())
                    .unwrap_or(true);
                let dst = if returns_value {
                    Some(self.new_temp())
                } else {
                    None
                };
                self.emit(Inst::Call {
                    dst,
                    callee: name,
                    args: arg_vals,
                });
                dst.map(Value::Temp).unwrap_or(Value::Undef)
            }
            K::Index { base, index } => {
                let idx = self.lower_expr(index);
                match self.slot_of(base) {
                    Some(slot) => {
                        let dst = self.new_temp();
                        self.emit(Inst::LoadIdx {
                            dst,
                            base: slot,
                            index: idx,
                        });
                        Value::Temp(dst)
                    }
                    None => {
                        let ptr = self.lower_expr(base);
                        let dst = self.new_temp();
                        self.emit(Inst::LoadPtr { dst, ptr });
                        Value::Temp(dst)
                    }
                }
            }
            K::Member { base, member, .. } => {
                let slot = self
                    .slot_of(base)
                    .map(|s| format!("{s}.{member}"))
                    .unwrap_or_else(|| format!("anon.{member}"));
                let dst = self.new_temp();
                self.emit(Inst::Load {
                    dst,
                    slot,
                    volatile: false,
                });
                Value::Temp(dst)
            }
            K::Cast { expr, ty } => {
                let v = self.lower_expr(expr);
                let dst = self.new_temp();
                let float = matches!(
                    ty.ty.base_spec(),
                    Some(
                        c::TypeSpecifier::Float
                            | c::TypeSpecifier::Double
                            | c::TypeSpecifier::LongDouble
                    )
                );
                self.emit(Inst::Un {
                    dst,
                    op: if float {
                        UnOp::FloatCast
                    } else {
                        UnOp::IntCast
                    },
                    a: v,
                });
                Value::Temp(dst)
            }
            K::CompoundLit { init, .. } => {
                let slot = self.fresh_slot("complit");
                if let c::Initializer::List { items, .. } = init.as_ref() {
                    for (i, item) in items.iter().enumerate() {
                        if let c::Initializer::Expr(e) = item {
                            let v = self.lower_expr(e);
                            self.emit(Inst::StoreIdx {
                                base: slot.clone(),
                                index: Value::Int(i as i64),
                                value: v,
                            });
                        }
                    }
                }
                let dst = self.new_temp();
                self.emit(Inst::Load {
                    dst,
                    slot,
                    volatile: false,
                });
                Value::Temp(dst)
            }
            K::SizeofExpr(inner) => {
                let sz = self
                    .sema
                    .expr_type(inner.id)
                    .map(|t| t.ty.size())
                    .unwrap_or(8);
                Value::Int(sz as i64)
            }
            K::SizeofType(_) => Value::Int(8),
            K::Comma { lhs, rhs } => {
                self.lower_expr(lhs);
                self.lower_expr(rhs)
            }
        }
    }

    fn lower_unary(&mut self, op: c::UnaryOp, operand: &c::Expr) -> Value {
        use c::UnaryOp as U;
        match op {
            U::Plus => self.lower_expr(operand),
            U::Minus => {
                let v = self.lower_expr(operand);
                let dst = self.new_temp();
                self.emit(Inst::Un {
                    dst,
                    op: UnOp::Neg,
                    a: v,
                });
                Value::Temp(dst)
            }
            U::BitNot => {
                let v = self.lower_expr(operand);
                let dst = self.new_temp();
                self.emit(Inst::Un {
                    dst,
                    op: UnOp::Not,
                    a: v,
                });
                Value::Temp(dst)
            }
            U::Not => {
                let v = self.lower_expr(operand);
                let dst = self.new_temp();
                self.emit(Inst::Un {
                    dst,
                    op: UnOp::LogNot,
                    a: v,
                });
                Value::Temp(dst)
            }
            U::Deref => {
                let ptr = self.lower_expr(operand);
                let dst = self.new_temp();
                self.emit(Inst::LoadPtr { dst, ptr });
                Value::Temp(dst)
            }
            U::AddrOf => {
                let slot = self
                    .slot_of(operand)
                    .unwrap_or_else(|| "anon.addr".to_string());
                let dst = self.new_temp();
                self.emit(Inst::AddrOf { dst, slot });
                Value::Temp(dst)
            }
            U::PreInc | U::PreDec | U::PostInc | U::PostDec => {
                let is_inc = matches!(op, U::PreInc | U::PostInc);
                match self.slot_of(operand) {
                    Some(slot) => {
                        let volatile = self.volatile_slots.contains(&slot);
                        let old = self.new_temp();
                        self.emit(Inst::Load {
                            dst: old,
                            slot: slot.clone(),
                            volatile,
                        });
                        let new = self.new_temp();
                        self.emit(Inst::Bin {
                            dst: new,
                            op: if is_inc { BinOp::Add } else { BinOp::Sub },
                            a: Value::Temp(old),
                            b: Value::Int(1),
                        });
                        self.emit(Inst::Store {
                            slot,
                            value: Value::Temp(new),
                            volatile,
                        });
                        if op.is_postfix() {
                            Value::Temp(old)
                        } else {
                            Value::Temp(new)
                        }
                    }
                    None => {
                        self.lower_expr(operand);
                        Value::Undef
                    }
                }
            }
            U::Real | U::Imag => {
                let v = self.lower_expr(operand);
                let dst = self.new_temp();
                self.emit(Inst::Un {
                    dst,
                    op: UnOp::FloatCast,
                    a: v,
                });
                self.feature(&[50, matches!(op, U::Imag) as u64]);
                Value::Temp(dst)
            }
        }
    }

    fn lower_binary(&mut self, op: c::BinaryOp, lhs: &c::Expr, rhs: &c::Expr) -> Value {
        use c::BinaryOp as B;
        // Short-circuit operators get control flow.
        if matches!(op, B::LogAnd | B::LogOr) {
            let result = self.fresh_slot("sc");
            let lv = self.lower_expr(lhs);
            let rhs_bb = self.new_block();
            let short_bb = self.new_block();
            let join = self.new_block();
            let (then_bb, else_bb) = if op == B::LogAnd {
                (rhs_bb, short_bb)
            } else {
                (short_bb, rhs_bb)
            };
            self.terminate(Terminator::Branch {
                cond: lv,
                then_bb,
                else_bb,
            });
            self.switch_to(short_bb);
            self.emit(Inst::Store {
                slot: result.clone(),
                value: Value::Int(i64::from(op == B::LogOr)),
                volatile: false,
            });
            self.terminate(Terminator::Jump(join));
            self.switch_to(rhs_bb);
            let rv = self.lower_expr(rhs);
            let norm = self.new_temp();
            self.emit(Inst::Bin {
                dst: norm,
                op: BinOp::CmpNe,
                a: rv,
                b: Value::Int(0),
            });
            self.emit(Inst::Store {
                slot: result.clone(),
                value: Value::Temp(norm),
                volatile: false,
            });
            self.terminate(Terminator::Jump(join));
            self.switch_to(join);
            let dst = self.new_temp();
            self.emit(Inst::Load {
                dst,
                slot: result,
                volatile: false,
            });
            return Value::Temp(dst);
        }
        let a = self.lower_expr(lhs);
        let b = self.lower_expr(rhs);
        let dst = self.new_temp();
        self.emit(Inst::Bin {
            dst,
            op: ir_binop(op),
            a,
            b,
        });
        Value::Temp(dst)
    }

    fn lower_assign(&mut self, op: Option<c::BinaryOp>, lhs: &c::Expr, rhs: &c::Expr) -> Value {
        let rv = self.lower_expr(rhs);
        // Compute the stored value (compound ops read the target first).
        let lhs_plain = lhs.unparenthesized();
        match &lhs_plain.kind {
            c::ExprKind::Ident(_) | c::ExprKind::Member { .. } => {
                let slot = self
                    .slot_of(lhs_plain)
                    .unwrap_or_else(|| "anon.lhs".to_string());
                let volatile = self.volatile_slots.contains(&slot);
                let value = match op {
                    None => rv,
                    Some(bop) => {
                        let old = self.new_temp();
                        self.emit(Inst::Load {
                            dst: old,
                            slot: slot.clone(),
                            volatile,
                        });
                        let dst = self.new_temp();
                        self.emit(Inst::Bin {
                            dst,
                            op: ir_binop(bop),
                            a: Value::Temp(old),
                            b: rv,
                        });
                        Value::Temp(dst)
                    }
                };
                self.emit(Inst::Store {
                    slot,
                    value: value.clone(),
                    volatile,
                });
                value
            }
            c::ExprKind::Index { base, index } => {
                let idx = self.lower_expr(index);
                let slot = self.slot_of(base).unwrap_or_else(|| "anon.arr".to_string());
                let value = match op {
                    None => rv,
                    Some(bop) => {
                        let old = self.new_temp();
                        self.emit(Inst::LoadIdx {
                            dst: old,
                            base: slot.clone(),
                            index: idx.clone(),
                        });
                        let dst = self.new_temp();
                        self.emit(Inst::Bin {
                            dst,
                            op: ir_binop(bop),
                            a: Value::Temp(old),
                            b: rv,
                        });
                        Value::Temp(dst)
                    }
                };
                self.emit(Inst::StoreIdx {
                    base: slot,
                    index: idx,
                    value: value.clone(),
                });
                value
            }
            c::ExprKind::Unary {
                op: c::UnaryOp::Deref,
                operand,
            } => {
                let ptr = self.lower_expr(operand);
                let value = match op {
                    None => rv,
                    Some(bop) => {
                        let old = self.new_temp();
                        self.emit(Inst::LoadPtr {
                            dst: old,
                            ptr: ptr.clone(),
                        });
                        let dst = self.new_temp();
                        self.emit(Inst::Bin {
                            dst,
                            op: ir_binop(bop),
                            a: Value::Temp(old),
                            b: rv,
                        });
                        Value::Temp(dst)
                    }
                };
                self.emit(Inst::StorePtr {
                    ptr,
                    value: value.clone(),
                });
                value
            }
            _ => {
                // Exotic l-values (casts of derefs, __imag targets, ...):
                // evaluate for effect.
                self.lower_expr(lhs_plain);
                self.feature(&[51]);
                rv
            }
        }
    }

    /// The memory slot named by an l-value expression, when it is directly
    /// nameable (identifier, member of identifier).
    fn slot_of(&mut self, e: &c::Expr) -> Option<String> {
        match &e.unparenthesized().kind {
            c::ExprKind::Ident(n) => self.resolve_or_global(n),
            c::ExprKind::Member { base, member, .. } => {
                let b = self.slot_of(base)?;
                Some(format!("{b}.{member}"))
            }
            c::ExprKind::Index { base, index } => {
                // Nested arrays: fold constant indices into the slot name.
                let b = self.slot_of(base)?;
                const_int_of(index).map(|i| format!("{b}[{i}]"))
            }
            _ => None,
        }
    }

    fn resolve_or_global(&self, name: &str) -> Option<String> {
        if let Some(slot) = self.resolve(name) {
            return Some(slot);
        }
        // File-scope object?
        if self.sema.functions.contains_key(name) {
            None
        } else {
            Some(name.to_string())
        }
    }
}

#[derive(Default)]
struct SwitchPlan {
    cases: Vec<i64>,
    has_default: bool,
}

struct SwitchLowerCtx {
    case_blocks: FxHashMap<i64, BlockId>,
    default_bb: Option<BlockId>,
}

fn collect_switch_labels(s: &c::Stmt, plan: &mut SwitchPlan) {
    match &s.kind {
        c::StmtKind::Compound(items) => {
            for item in items {
                if let c::BlockItem::Stmt(st) = item {
                    collect_switch_labels(st, plan);
                }
            }
        }
        c::StmtKind::Case { expr, stmt } => {
            plan.cases.push(
                const_int_of(expr)
                    .or_else(|| eval_via_sema(expr))
                    .unwrap_or(0),
            );
            collect_switch_labels(stmt, plan);
        }
        c::StmtKind::Default { stmt } => {
            plan.has_default = true;
            collect_switch_labels(stmt, plan);
        }
        // Nested switches own their labels; other statements cannot carry
        // this switch's labels in our subset.
        _ => {}
    }
}

/// Best-effort constant evaluation for case labels that are not literals
/// (enum constants are resolved during lowering via the sema tables; this
/// fallback handles simple arithmetic).
fn eval_via_sema(e: &c::Expr) -> Option<i64> {
    match &e.kind {
        c::ExprKind::Binary { op, lhs, rhs } => {
            let a = eval_via_sema(lhs).or_else(|| const_int_of(lhs))?;
            let b = eval_via_sema(rhs).or_else(|| const_int_of(rhs))?;
            Some(match op {
                c::BinaryOp::Add => a.wrapping_add(b),
                c::BinaryOp::Sub => a.wrapping_sub(b),
                c::BinaryOp::Mul => a.wrapping_mul(b),
                _ => return None,
            })
        }
        _ => const_int_of(e),
    }
}

fn ir_binop(op: c::BinaryOp) -> BinOp {
    use c::BinaryOp as B;
    match op {
        B::Add => BinOp::Add,
        B::Sub => BinOp::Sub,
        B::Mul => BinOp::Mul,
        B::Div => BinOp::Div,
        B::Rem => BinOp::Rem,
        B::Shl => BinOp::Shl,
        B::Shr => BinOp::Shr,
        B::BitAnd => BinOp::And,
        B::BitXor => BinOp::Xor,
        B::BitOr => BinOp::Or,
        B::Lt => BinOp::CmpLt,
        B::Le => BinOp::CmpLe,
        B::Gt => BinOp::CmpGt,
        B::Ge => BinOp::CmpGe,
        B::Eq => BinOp::CmpEq,
        B::Ne => BinOp::CmpNe,
        B::LogAnd | B::LogOr => BinOp::And, // handled before via control flow
    }
}

fn operand_code(v: &Value) -> u64 {
    match v {
        Value::Temp(_) => 1,
        Value::Int(x) => 2 + ((*x == 0) as u64),
        Value::Float(_) => 4,
        Value::Slot(_) => 5,
        Value::Str(_) => 6,
        Value::Undef => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_lang::compile;

    fn lower_src(src: &str) -> Lowered {
        let (ast, sema) = compile(src).expect("test source compiles");
        lower(&ast, &sema)
    }

    #[test]
    fn lowers_arithmetic() {
        let l = lower_src("int f(int a, int b) { return a * b + 1; }");
        let f = l.module.function("f").unwrap();
        assert!(f.inst_count() >= 3);
        assert!(f.returns_value);
        assert!(!l.features.is_empty());
    }

    #[test]
    fn lowers_control_flow() {
        let l = lower_src(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 2) s += i; } return s; }",
        );
        let f = l.module.function("f").unwrap();
        // Entry + for header/body/latch/exit + if blocks + dead after return.
        assert!(f.blocks.len() >= 7, "blocks: {}", f.blocks.len());
        let reach = f.reachable();
        assert!(reach.iter().filter(|r| **r).count() >= 6);
    }

    #[test]
    fn lowers_switch() {
        let l = lower_src(
            "int f(int n) { switch (n) { case 1: return 10; case 2: return 20; default: return 0; } }",
        );
        let f = l.module.function("f").unwrap();
        let has_switch = f
            .blocks
            .iter()
            .any(|b| matches!(&b.term, Terminator::Switch { cases, .. } if cases.len() == 2));
        assert!(has_switch, "{}", l.module);
    }

    #[test]
    fn lowers_short_circuit() {
        let l = lower_src("int f(int a, int b) { return a && b; }");
        let f = l.module.function("f").unwrap();
        assert!(f.blocks.len() >= 4, "{}", l.module);
    }

    #[test]
    fn lowers_goto() {
        let l = lower_src("int f(int n) { if (n) goto out; n = 1; out: return n; }");
        let f = l.module.function("f").unwrap();
        assert!(f.blocks.len() >= 4);
        // The label block must be reachable.
        let reach = f.reachable();
        assert!(reach.iter().filter(|r| **r).count() >= 4);
    }

    #[test]
    fn lowers_globals_and_arrays() {
        let l = lower_src("int g = 7; int a[4]; int f(int i) { a[i] = g; return a[0]; }");
        assert_eq!(l.module.globals.len(), 2);
        assert_eq!(l.module.globals[0], ("g".to_string(), Some(7)));
        let f = l.module.function("f").unwrap();
        let has_storeidx = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::StoreIdx { base, .. } if base == "a"));
        assert!(has_storeidx, "{}", l.module);
    }

    #[test]
    fn lowers_calls_and_void() {
        let l = lower_src("void log_it(int x) { } int f(int a) { log_it(a); return abs(a); }");
        let f = l.module.function("f").unwrap();
        let calls: Vec<&Inst> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 2);
        assert!(matches!(calls[0], Inst::Call { dst: None, .. }));
        assert!(matches!(calls[1], Inst::Call { dst: Some(_), .. }));
    }

    #[test]
    fn volatile_tracked() {
        let l = lower_src("int f(void) { volatile int v = 1; return v; }");
        let f = l.module.function("f").unwrap();
        let vol_load = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Load { volatile: true, .. }));
        assert!(vol_load, "{}", l.module);
    }

    #[test]
    fn shadowing_gets_distinct_slots() {
        let l = lower_src("int f(void) { int x = 1; { int x = 2; x = 3; } return x; }");
        let f = l.module.function("f").unwrap();
        let stores: Vec<String> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Store { slot, .. } => Some(slot.clone()),
                _ => None,
            })
            .collect();
        let unique: std::collections::HashSet<&String> = stores.iter().collect();
        assert_eq!(stores.len(), 3);
        assert_eq!(unique.len(), 2, "{stores:?}");
    }

    #[test]
    fn ternary_and_member() {
        let l = lower_src(
            "struct P { int x; }; int f(struct P p, int c) { p.x = c ? 1 : 2; return p.x; }",
        );
        let f = l.module.function("f").unwrap();
        assert!(f.inst_count() >= 5);
    }
}
