//! Branch-coverage instrumentation for the compiler under test.
//!
//! Every pipeline stage reports *features* (hashed structural observations);
//! each feature maps to one bit in a fixed-size map, exactly like the edge
//! bitmap of AFL-style fuzzers. The evaluation's "covered branches" metric
//! (Figure 7) is the population count of this map.

use parking_lot::Mutex;
use std::sync::Arc;

/// Compilation stages, which double as the compiler components that crashes
/// are attributed to (Table 4 / Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Lexing, parsing, semantic analysis.
    FrontEnd,
    /// Lowering the AST to three-address IR.
    IrGen,
    /// The optimization pipeline.
    Opt,
    /// Instruction selection and register allocation.
    BackEnd,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::FrontEnd, Stage::IrGen, Stage::Opt, Stage::BackEnd];

    /// Table-style label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::FrontEnd => "Front-End",
            Stage::IrGen => "IR",
            Stage::Opt => "Opt",
            Stage::BackEnd => "Back-End",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Size of the per-stage bitmap in bits (64K, like AFL's edge map).
pub const MAP_BITS: usize = 1 << 16;

/// A branch-coverage bitmap over all stages.
#[derive(Clone)]
pub struct CoverageMap {
    words: Vec<u64>,
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoverageMap")
            .field("covered", &self.count())
            .finish()
    }
}

impl Default for CoverageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap {
            words: vec![0u64; MAP_BITS * Stage::ALL.len() / 64],
        }
    }

    fn slot(stage: Stage, feature: u64) -> (usize, u64) {
        let stage_idx = match stage {
            Stage::FrontEnd => 0usize,
            Stage::IrGen => 1,
            Stage::Opt => 2,
            Stage::BackEnd => 3,
        };
        let bit = (feature % MAP_BITS as u64) as usize + stage_idx * MAP_BITS;
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Records one feature observation. Returns `true` if the bit was new.
    pub fn record(&mut self, stage: Stage, feature: u64) -> bool {
        let (word, mask) = Self::slot(stage, feature);
        let new = self.words[word] & mask == 0;
        self.words[word] |= mask;
        new
    }

    /// Whether the feature's bit is already set.
    pub fn contains(&self, stage: Stage, feature: u64) -> bool {
        let (word, mask) = Self::slot(stage, feature);
        self.words[word] & mask != 0
    }

    /// Number of covered branches across all stages.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of covered branches attributed to one stage.
    pub fn count_stage(&self, stage: Stage) -> usize {
        let stage_idx = match stage {
            Stage::FrontEnd => 0usize,
            Stage::IrGen => 1,
            Stage::Opt => 2,
            Stage::BackEnd => 3,
        };
        let lo = stage_idx * MAP_BITS / 64;
        let hi = lo + MAP_BITS / 64;
        self.words[lo..hi]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Merges `other` into `self`; returns the number of newly set bits.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let mut new = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            new += (*b & !*a).count_ones() as usize;
            *a |= *b;
        }
        new
    }

    /// Whether `other` covers at least one branch `self` does not.
    pub fn would_grow(&self, other: &CoverageMap) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(a, b)| *b & !*a != 0)
    }
}

/// A thread-safe coverage map shared across parallel fuzzing workers
/// (macro-fuzzer enhancement #3 in §3.4).
#[derive(Clone, Default)]
pub struct SharedCoverage {
    inner: Arc<Mutex<CoverageMap>>,
}

impl std::fmt::Debug for SharedCoverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCoverage")
            .field("covered", &self.count())
            .finish()
    }
}

impl SharedCoverage {
    /// A fresh shared map.
    pub fn new() -> Self {
        SharedCoverage::default()
    }

    /// Merges a worker's local observations; returns newly covered bits.
    pub fn merge(&self, local: &CoverageMap) -> usize {
        self.inner.lock().merge(local)
    }

    /// Whether merging `local` would add coverage.
    pub fn would_grow(&self, local: &CoverageMap) -> bool {
        self.inner.lock().would_grow(local)
    }

    /// Total covered branches.
    pub fn count(&self) -> usize {
        self.inner.lock().count()
    }

    /// A snapshot of the current map.
    pub fn snapshot(&self) -> CoverageMap {
        self.inner.lock().clone()
    }
}

/// FNV-1a hash used to turn structural observations into feature ids.
pub fn feature_hash(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Hashes a string into a feature id.
pub fn feature_hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut m = CoverageMap::new();
        assert_eq!(m.count(), 0);
        assert!(m.record(Stage::FrontEnd, 1));
        assert!(!m.record(Stage::FrontEnd, 1));
        assert!(m.record(Stage::Opt, 1)); // same feature, different stage
        assert_eq!(m.count(), 2);
        assert_eq!(m.count_stage(Stage::FrontEnd), 1);
        assert_eq!(m.count_stage(Stage::Opt), 1);
        assert_eq!(m.count_stage(Stage::BackEnd), 0);
    }

    #[test]
    fn merge_reports_new_bits() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        a.record(Stage::IrGen, 10);
        b.record(Stage::IrGen, 10);
        b.record(Stage::IrGen, 11);
        assert!(a.would_grow(&b));
        assert_eq!(a.merge(&b), 1);
        assert!(!a.would_grow(&b));
        assert_eq!(a.merge(&b), 0);
    }

    #[test]
    fn shared_coverage_threads() {
        let shared = SharedCoverage::new();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut local = CoverageMap::new();
                for i in 0..100 {
                    local.record(Stage::BackEnd, t * 1000 + i);
                }
                s.merge(&local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.count(), 400);
    }

    #[test]
    fn hashes_are_stable_and_distinct() {
        assert_eq!(feature_hash(&[1, 2, 3]), feature_hash(&[1, 2, 3]));
        assert_ne!(feature_hash(&[1, 2, 3]), feature_hash(&[3, 2, 1]));
        assert_ne!(feature_hash_str("a"), feature_hash_str("b"));
    }
}
