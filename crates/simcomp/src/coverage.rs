//! Branch-coverage instrumentation for the compiler under test.
//!
//! Every pipeline stage reports *features* (hashed structural observations);
//! each feature maps to one bit in a fixed-size map, exactly like the edge
//! bitmap of AFL-style fuzzers. The evaluation's "covered branches" metric
//! (Figure 7) is the population count of this map.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Compilation stages, which double as the compiler components that crashes
/// are attributed to (Table 4 / Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Lexing, parsing, semantic analysis.
    FrontEnd,
    /// Lowering the AST to three-address IR.
    IrGen,
    /// The optimization pipeline.
    Opt,
    /// Instruction selection and register allocation.
    BackEnd,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::FrontEnd, Stage::IrGen, Stage::Opt, Stage::BackEnd];

    /// Table-style label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::FrontEnd => "Front-End",
            Stage::IrGen => "IR",
            Stage::Opt => "Opt",
            Stage::BackEnd => "Back-End",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Size of the per-stage bitmap in bits (64K, like AFL's edge map).
pub const MAP_BITS: usize = 1 << 16;

/// A branch-coverage bitmap over all stages.
#[derive(Clone)]
pub struct CoverageMap {
    words: Vec<u64>,
    /// Indices of non-zero words, in first-touch order. One compile sets a
    /// few hundred bits in a 4096-word map, so merges walk this list
    /// instead of scanning the whole map.
    touched: Vec<u32>,
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoverageMap")
            .field("covered", &self.count())
            .finish()
    }
}

impl Default for CoverageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap {
            words: vec![0u64; MAP_BITS * Stage::ALL.len() / 64],
            touched: Vec::new(),
        }
    }

    fn slot(stage: Stage, feature: u64) -> (usize, u64) {
        let stage_idx = match stage {
            Stage::FrontEnd => 0usize,
            Stage::IrGen => 1,
            Stage::Opt => 2,
            Stage::BackEnd => 3,
        };
        let bit = (feature % MAP_BITS as u64) as usize + stage_idx * MAP_BITS;
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Records one feature observation. Returns `true` if the bit was new.
    pub fn record(&mut self, stage: Stage, feature: u64) -> bool {
        let (word, mask) = Self::slot(stage, feature);
        let w = self.words[word];
        if w == 0 {
            self.touched.push(word as u32);
        }
        self.words[word] = w | mask;
        w & mask == 0
    }

    /// Whether the feature's bit is already set.
    pub fn contains(&self, stage: Stage, feature: u64) -> bool {
        let (word, mask) = Self::slot(stage, feature);
        self.words[word] & mask != 0
    }

    /// Number of covered branches across all stages.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of covered branches attributed to one stage.
    pub fn count_stage(&self, stage: Stage) -> usize {
        let stage_idx = match stage {
            Stage::FrontEnd => 0usize,
            Stage::IrGen => 1,
            Stage::Opt => 2,
            Stage::BackEnd => 3,
        };
        let lo = stage_idx * MAP_BITS / 64;
        let hi = lo + MAP_BITS / 64;
        self.words[lo..hi]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Merges `other` into `self`; returns the number of newly set bits.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let mut new = 0;
        for &wi in &other.touched {
            let wi = wi as usize;
            let b = other.words[wi];
            let a = self.words[wi];
            new += (b & !a).count_ones() as usize;
            if a == 0 {
                self.touched.push(wi as u32);
            }
            self.words[wi] = a | b;
        }
        new
    }

    /// The non-zero words as `(word_index, bits)` pairs in index order — a
    /// compact, serialization-friendly form (one compile touches a few
    /// hundred of the map's 4096 words, a campaign a few thousand).
    pub fn to_sparse_words(&self) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = self
            .touched
            .iter()
            .map(|&wi| (wi, self.words[wi as usize]))
            .filter(|(_, w)| *w != 0)
            .collect();
        out.sort_unstable_by_key(|(wi, _)| *wi);
        out
    }

    /// Rebuilds a map from [`CoverageMap::to_sparse_words`] output.
    /// Out-of-range indices are ignored so a corrupt checkpoint cannot
    /// panic the restore path.
    pub fn from_sparse_words(sparse: &[(u32, u64)]) -> CoverageMap {
        let mut map = CoverageMap::new();
        for &(wi, bits) in sparse {
            let wi = wi as usize;
            if wi < map.words.len() && bits != 0 {
                if map.words[wi] == 0 {
                    map.touched.push(wi as u32);
                }
                map.words[wi] |= bits;
            }
        }
        map
    }

    /// Whether `other` covers at least one branch `self` does not.
    pub fn would_grow(&self, other: &CoverageMap) -> bool {
        other
            .touched
            .iter()
            .any(|&wi| other.words[wi as usize] & !self.words[wi as usize] != 0)
    }
}

/// A lock-free coverage bitmap shared across parallel campaign workers.
///
/// Each word is an [`AtomicU64`]; merging a worker's local map is a series
/// of `fetch_or` operations, so concurrent merges never block and — because
/// `fetch_or` returns the previous word — every newly set bit is credited
/// to *exactly one* merge call. Summing the returned `new_bits` over all
/// workers therefore always equals [`AtomicCoverage::count`], which keeps
/// `new_bits`-driven pool growth race-free.
#[derive(Debug, Default)]
pub struct AtomicCoverage {
    words: Vec<AtomicU64>,
}

impl AtomicCoverage {
    /// An empty shared map.
    pub fn new() -> Self {
        AtomicCoverage {
            words: (0..MAP_BITS * Stage::ALL.len() / 64)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Merges a worker's local observations; returns the number of bits
    /// this call newly set (each global bit is credited exactly once
    /// across all concurrent merges).
    pub fn merge(&self, local: &CoverageMap) -> usize {
        let mut new = 0;
        for &wi in &local.touched {
            let b = local.words[wi as usize];
            let prev = self.words[wi as usize].fetch_or(b, Ordering::Relaxed);
            new += (b & !prev).count_ones() as usize;
        }
        new
    }

    /// Total covered branches across all stages.
    pub fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Covered branches attributed to one stage.
    pub fn count_stage(&self, stage: Stage) -> usize {
        let stage_idx = match stage {
            Stage::FrontEnd => 0usize,
            Stage::IrGen => 1,
            Stage::Opt => 2,
            Stage::BackEnd => 3,
        };
        let lo = stage_idx * MAP_BITS / 64;
        let hi = lo + MAP_BITS / 64;
        self.words[lo..hi]
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// A point-in-time copy as a plain [`CoverageMap`].
    pub fn snapshot(&self) -> CoverageMap {
        let words: Vec<u64> = self
            .words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect();
        let touched = words
            .iter()
            .enumerate()
            .filter(|(_, w)| **w != 0)
            .map(|(i, _)| i as u32)
            .collect();
        CoverageMap { words, touched }
    }
}

/// A thread-safe coverage map shared across parallel fuzzing workers
/// (macro-fuzzer enhancement #3 in §3.4).
#[derive(Clone, Default)]
pub struct SharedCoverage {
    inner: Arc<Mutex<CoverageMap>>,
}

impl std::fmt::Debug for SharedCoverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCoverage")
            .field("covered", &self.count())
            .finish()
    }
}

impl SharedCoverage {
    /// A fresh shared map.
    pub fn new() -> Self {
        SharedCoverage::default()
    }

    /// Merges a worker's local observations; returns newly covered bits.
    pub fn merge(&self, local: &CoverageMap) -> usize {
        self.inner.lock().merge(local)
    }

    /// Whether merging `local` would add coverage.
    pub fn would_grow(&self, local: &CoverageMap) -> bool {
        self.inner.lock().would_grow(local)
    }

    /// Total covered branches.
    pub fn count(&self) -> usize {
        self.inner.lock().count()
    }

    /// A snapshot of the current map.
    pub fn snapshot(&self) -> CoverageMap {
        self.inner.lock().clone()
    }
}

/// FNV-1a hash used to turn structural observations into feature ids.
pub fn feature_hash(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Hashes a string into a feature id.
pub fn feature_hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Hashes anything `Display` into a feature id by streaming the formatted
/// bytes straight through FNV-1a — byte-identical to
/// `feature_hash_str(&format!(...))` without the intermediate `String`.
pub fn feature_hash_display(args: std::fmt::Arguments<'_>) -> u64 {
    use std::fmt::Write;
    struct Fnv(u64);
    impl Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
            }
            Ok(())
        }
    }
    let mut fnv = Fnv(0xcbf2_9ce4_8422_2325);
    let _ = fnv.write_fmt(args);
    fnv.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut m = CoverageMap::new();
        assert_eq!(m.count(), 0);
        assert!(m.record(Stage::FrontEnd, 1));
        assert!(!m.record(Stage::FrontEnd, 1));
        assert!(m.record(Stage::Opt, 1)); // same feature, different stage
        assert_eq!(m.count(), 2);
        assert_eq!(m.count_stage(Stage::FrontEnd), 1);
        assert_eq!(m.count_stage(Stage::Opt), 1);
        assert_eq!(m.count_stage(Stage::BackEnd), 0);
    }

    #[test]
    fn merge_reports_new_bits() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        a.record(Stage::IrGen, 10);
        b.record(Stage::IrGen, 10);
        b.record(Stage::IrGen, 11);
        assert!(a.would_grow(&b));
        assert_eq!(a.merge(&b), 1);
        assert!(!a.would_grow(&b));
        assert_eq!(a.merge(&b), 0);
    }

    #[test]
    fn sparse_words_round_trip() {
        let mut m = CoverageMap::new();
        for i in 0..300u64 {
            m.record(Stage::FrontEnd, i * 37);
            m.record(Stage::BackEnd, i * 91);
        }
        let sparse = m.to_sparse_words();
        let back = CoverageMap::from_sparse_words(&sparse);
        assert_eq!(back.count(), m.count());
        assert_eq!(back.to_sparse_words(), sparse);
        assert!(!m.would_grow(&back) && !back.would_grow(&m));
        // Corrupt input degrades instead of panicking.
        let garbage = [(u32::MAX, 0xFFu64), (3, 0)];
        assert_eq!(CoverageMap::from_sparse_words(&garbage).count(), 0);
    }

    #[test]
    fn shared_coverage_threads() {
        let shared = SharedCoverage::new();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut local = CoverageMap::new();
                for i in 0..100 {
                    local.record(Stage::BackEnd, t * 1000 + i);
                }
                s.merge(&local);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.count(), 400);
    }

    #[test]
    fn atomic_coverage_matches_serial_merge() {
        let atomic = AtomicCoverage::new();
        let mut serial = CoverageMap::new();
        let mut local = CoverageMap::new();
        local.record(Stage::Opt, 3);
        local.record(Stage::BackEnd, 9);
        assert_eq!(atomic.merge(&local), serial.merge(&local));
        assert_eq!(atomic.merge(&local), 0);
        assert_eq!(atomic.count(), serial.count());
        assert_eq!(
            atomic.count_stage(Stage::Opt),
            serial.count_stage(Stage::Opt)
        );
        assert_eq!(atomic.snapshot().count(), serial.count());
    }

    #[test]
    fn atomic_merge_credits_each_bit_once_under_contention() {
        // Eight threads merge heavily overlapping maps; every global bit
        // must be credited to exactly one merge call, so the sum of
        // returned new-bit counts equals the final population count.
        let shared = AtomicCoverage::new();
        let total_new: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u64)
                .map(|t| {
                    let shared = &shared;
                    scope.spawn(move || {
                        let mut new = 0;
                        for round in 0..50u64 {
                            let mut local = CoverageMap::new();
                            // Overlapping range: threads race on most bits.
                            for i in 0..64 {
                                local.record(Stage::IrGen, (t % 4) * 32 + round + i);
                            }
                            new += shared.merge(&local);
                        }
                        new
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total_new, shared.count());
        assert!(shared.count() > 0);
    }

    #[test]
    fn hashes_are_stable_and_distinct() {
        assert_eq!(feature_hash(&[1, 2, 3]), feature_hash(&[1, 2, 3]));
        assert_ne!(feature_hash(&[1, 2, 3]), feature_hash(&[3, 2, 1]));
        assert_ne!(feature_hash_str("a"), feature_hash_str("b"));
    }
}
