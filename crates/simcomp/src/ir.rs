//! Three-address intermediate representation with explicit basic blocks.
//!
//! The IR is deliberately conventional — temporaries, loads/stores against
//! named slots, block terminators — so the optimization passes and the back
//! end exercise the same kinds of invariants real middle ends do.

use metamut_lang::fxhash::FxHashMap;
use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Temp(pub u32);

impl fmt::Display for Temp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%t{}", self.0)
    }
}

/// A basic-block id within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Operand values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A temporary produced by an earlier instruction.
    Temp(Temp),
    /// An integer constant.
    Int(i64),
    /// A floating constant.
    Float(f64),
    /// The address of (or value in) a named memory slot.
    Slot(String),
    /// The address of a string constant.
    Str(String),
    /// An undefined value (e.g. reading an uninitialized object).
    Undef,
}

impl Value {
    /// Whether this is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// The integer constant value, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Temp(t) => write!(f, "{t}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Slot(s) => write!(f, "@{s}"),
            Value::Str(s) => write!(f, "str{:?}", s),
            Value::Undef => write!(f, "undef"),
        }
    }
}

/// IR binary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    And,
    /// `^`
    Xor,
    /// `|`
    Or,
    /// `<`
    CmpLt,
    /// `<=`
    CmpLe,
    /// `>`
    CmpGt,
    /// `>=`
    CmpGe,
    /// `==`
    CmpEq,
    /// `!=`
    CmpNe,
}

impl BinOp {
    /// Whether the op yields 0/1.
    pub fn is_comparison(self) -> bool {
        use BinOp::*;
        matches!(self, CmpLt | CmpLe | CmpGt | CmpGe | CmpEq | CmpNe)
    }

    /// A small stable opcode number for feature hashing.
    pub fn code(self) -> u64 {
        self as u64
    }
}

/// IR unary opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical not (`== 0`).
    LogNot,
    /// Truncate/extend between integer widths (modelled coarsely).
    IntCast,
    /// Int ↔ float conversion.
    FloatCast,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = a <op> b`
    Bin {
        /// Result temp.
        dst: Temp,
        /// Opcode.
        op: BinOp,
        /// Left operand.
        a: Value,
        /// Right operand.
        b: Value,
    },
    /// `dst = <op> a`
    Un {
        /// Result temp.
        dst: Temp,
        /// Opcode.
        op: UnOp,
        /// Operand.
        a: Value,
    },
    /// `dst = load slot`
    Load {
        /// Result temp.
        dst: Temp,
        /// Loaded slot name.
        slot: String,
        /// Whether the slot is volatile-qualified.
        volatile: bool,
    },
    /// `store slot, v`
    Store {
        /// Target slot name.
        slot: String,
        /// Stored value.
        value: Value,
        /// Whether the slot is volatile-qualified.
        volatile: bool,
    },
    /// `dst = load_idx base[idx]`
    LoadIdx {
        /// Result temp.
        dst: Temp,
        /// Base slot.
        base: String,
        /// Element index.
        index: Value,
    },
    /// `store_idx base[idx], v`
    StoreIdx {
        /// Base slot.
        base: String,
        /// Element index.
        index: Value,
        /// Stored value.
        value: Value,
    },
    /// `dst = addr_of slot`
    AddrOf {
        /// Result temp.
        dst: Temp,
        /// Slot whose address is taken.
        slot: String,
    },
    /// `dst = load_ptr p`
    LoadPtr {
        /// Result temp.
        dst: Temp,
        /// Pointer value.
        ptr: Value,
    },
    /// `store_ptr p, v`
    StorePtr {
        /// Pointer value.
        ptr: Value,
        /// Stored value.
        value: Value,
    },
    /// `dst = call f(args...)` (dst unused for void calls)
    Call {
        /// Result temp, when the callee returns a value.
        dst: Option<Temp>,
        /// Callee name.
        callee: String,
        /// Arguments.
        args: Vec<Value>,
    },
}

impl Inst {
    /// The temp this instruction defines, if any.
    pub fn def(&self) -> Option<Temp> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::LoadIdx { dst, .. }
            | Inst::AddrOf { dst, .. }
            | Inst::LoadPtr { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::StoreIdx { .. } | Inst::StorePtr { .. } => None,
        }
    }

    /// Whether removing this instruction could change observable behavior.
    pub fn has_side_effects(&self) -> bool {
        match self {
            Inst::Store { .. }
            | Inst::StoreIdx { .. }
            | Inst::StorePtr { .. }
            | Inst::Call { .. } => true,
            Inst::Load { volatile, .. } => *volatile,
            _ => false,
        }
    }

    /// Values read by this instruction.
    pub fn uses(&self) -> Vec<&Value> {
        match self {
            Inst::Bin { a, b, .. } => vec![a, b],
            Inst::Un { a, .. } => vec![a],
            Inst::Load { .. } | Inst::AddrOf { .. } => vec![],
            Inst::Store { value, .. } => vec![value],
            Inst::LoadIdx { index, .. } => vec![index],
            Inst::StoreIdx { index, value, .. } => vec![index, value],
            Inst::LoadPtr { ptr, .. } => vec![ptr],
            Inst::StorePtr { ptr, value } => vec![ptr, value],
            Inst::Call { args, .. } => args.iter().collect(),
        }
    }

    /// Mutable access to the values read by this instruction.
    pub fn uses_mut(&mut self) -> Vec<&mut Value> {
        match self {
            Inst::Bin { a, b, .. } => vec![a, b],
            Inst::Un { a, .. } => vec![a],
            Inst::Load { .. } | Inst::AddrOf { .. } => vec![],
            Inst::Store { value, .. } => vec![value],
            Inst::LoadIdx { index, .. } => vec![index],
            Inst::StoreIdx { index, value, .. } => vec![index, value],
            Inst::LoadPtr { ptr, .. } => vec![ptr],
            Inst::StorePtr { ptr, value } => vec![ptr, value],
            Inst::Call { args, .. } => args.iter_mut().collect(),
        }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on a value being nonzero.
    Branch {
        /// Condition value.
        cond: Value,
        /// Taken when nonzero.
        then_bb: BlockId,
        /// Taken when zero.
        else_bb: BlockId,
    },
    /// Multiway dispatch.
    Switch {
        /// Scrutinee.
        value: Value,
        /// (case value, target) pairs.
        cases: Vec<(i64, BlockId)>,
        /// Default target.
        default: BlockId,
    },
    /// Function return.
    Return(Option<Value>),
    /// Placeholder during construction; never valid in finished IR.
    Unreachable,
}

impl Terminator {
    /// All successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Switch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            Terminator::Return(_) | Terminator::Unreachable => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block id.
    pub id: BlockId,
    /// Instructions in order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    /// Source-level name.
    pub name: String,
    /// Parameter slot names in order.
    pub params: Vec<String>,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// All blocks; entry is `blocks[0]`.
    pub blocks: Vec<Block>,
    /// Number of temps allocated.
    pub temp_count: u32,
    /// Names of local slots (including spilled aggregates).
    pub locals: Vec<String>,
}

impl IrFunction {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block by id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block lookup.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Total instruction count across blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Predecessor map.
    pub fn predecessors(&self) -> FxHashMap<BlockId, Vec<BlockId>> {
        let mut preds: FxHashMap<BlockId, Vec<BlockId>> = FxHashMap::default();
        for b in &self.blocks {
            for s in b.term.successors() {
                preds.entry(s).or_default().push(b.id);
            }
        }
        preds
    }

    /// Blocks reachable from entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry()];
        while let Some(b) = stack.pop() {
            let idx = b.0 as usize;
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            stack.extend(self.blocks[idx].term.successors());
        }
        seen
    }
}

/// A lowered module: globals plus functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Global slot names with optional constant initializers.
    pub globals: Vec<(String, Option<i64>)>,
    /// Functions in source order.
    pub functions: Vec<IrFunction>,
}

impl Module {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&IrFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total instructions in the module.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.inst_count()).sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (g, init) in &self.globals {
            match init {
                Some(v) => writeln!(f, "global @{g} = {v}")?,
                None => writeln!(f, "global @{g}")?,
            }
        }
        for func in &self.functions {
            writeln!(f, "fn {}({}):", func.name, func.params.join(", "))?;
            for b in &func.blocks {
                writeln!(f, "  {}:", b.id)?;
                for i in &b.insts {
                    writeln!(f, "    {i:?}")?;
                }
                writeln!(f, "    term {:?}", b.term)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_fn() -> IrFunction {
        IrFunction {
            name: "f".into(),
            params: vec!["a".into()],
            returns_value: true,
            blocks: vec![
                Block {
                    id: BlockId(0),
                    insts: vec![
                        Inst::Load {
                            dst: Temp(0),
                            slot: "a".into(),
                            volatile: false,
                        },
                        Inst::Bin {
                            dst: Temp(1),
                            op: BinOp::Add,
                            a: Value::Temp(Temp(0)),
                            b: Value::Int(1),
                        },
                    ],
                    term: Terminator::Branch {
                        cond: Value::Temp(Temp(1)),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block {
                    id: BlockId(1),
                    insts: vec![],
                    term: Terminator::Return(Some(Value::Temp(Temp(1)))),
                },
                Block {
                    id: BlockId(2),
                    insts: vec![],
                    term: Terminator::Return(Some(Value::Int(0))),
                },
            ],
            temp_count: 2,
            locals: vec!["a".into()],
        }
    }

    #[test]
    fn successors_and_preds() {
        let f = tiny_fn();
        assert_eq!(
            f.block(BlockId(0)).term.successors(),
            vec![BlockId(1), BlockId(2)]
        );
        let preds = f.predecessors();
        assert_eq!(preds[&BlockId(1)], vec![BlockId(0)]);
        assert_eq!(preds[&BlockId(2)], vec![BlockId(0)]);
        assert!(!preds.contains_key(&BlockId(0)));
    }

    #[test]
    fn reachability() {
        let mut f = tiny_fn();
        assert_eq!(f.reachable(), vec![true, true, true]);
        f.block_mut(BlockId(0)).term = Terminator::Jump(BlockId(1));
        assert_eq!(f.reachable(), vec![true, true, false]);
    }

    #[test]
    fn side_effects_and_defs() {
        let store = Inst::Store {
            slot: "g".into(),
            value: Value::Int(1),
            volatile: false,
        };
        assert!(store.has_side_effects());
        assert_eq!(store.def(), None);
        let add = Inst::Bin {
            dst: Temp(3),
            op: BinOp::Add,
            a: Value::Int(1),
            b: Value::Int(2),
        };
        assert!(!add.has_side_effects());
        assert_eq!(add.def(), Some(Temp(3)));
        let vload = Inst::Load {
            dst: Temp(4),
            slot: "v".into(),
            volatile: true,
        };
        assert!(vload.has_side_effects());
    }

    #[test]
    fn module_queries() {
        let m = Module {
            globals: vec![("g".into(), Some(3))],
            functions: vec![tiny_fn()],
        };
        assert!(m.function("f").is_some());
        assert!(m.function("nope").is_none());
        assert_eq!(m.inst_count(), 2);
        assert!(!m.to_string().is_empty());
    }
}
