//! The back end: instruction selection over a small virtual ISA and a
//! linear-scan register allocator with spilling — deep-pipeline code that
//! only well-formed, optimizer-surviving programs reach (which is why the
//! paper's back-end crashes are the rarest and most prized, Table 4).

use crate::coverage::{feature_hash, feature_hash_str};
use crate::ir::*;
use metamut_lang::fxhash::FxHashMap;

/// A virtual machine instruction produced by instruction selection.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmInst {
    /// Load an immediate into a register.
    LoadImm(u8, i64),
    /// Move between registers.
    Mov(u8, u8),
    /// Arithmetic/logic: `dst = a <op> b`.
    Alu(BinOp, u8, u8, u8),
    /// Memory read from a named slot.
    Ld(u8, String),
    /// Memory write to a named slot.
    St(String, u8),
    /// Indexed memory read.
    LdIdx(u8, String, u8),
    /// Indexed memory write.
    StIdx(String, u8, u8),
    /// Spill a register to a stack slot.
    Spill(u8, u32),
    /// Reload a register from a stack slot.
    Reload(u8, u32),
    /// Call a function.
    CallSym(String, u8),
    /// Conditional jump (register, target label).
    Jnz(u8, u32),
    /// Unconditional jump.
    Jmp(u32),
    /// Return.
    Ret,
    /// Block label marker.
    Label(u32),
}

/// The assembled output of one compilation.
#[derive(Debug, Clone, Default)]
pub struct AsmOutput {
    /// Emitted instructions in order.
    pub insts: Vec<AsmInst>,
    /// Number of spill/reload pairs inserted by register allocation.
    pub spills: usize,
    /// Peak live temporaries across all functions.
    pub peak_pressure: usize,
    /// Coverage features observed during code generation.
    pub features: Vec<u64>,
}

/// Number of allocatable registers in the virtual ISA.
pub const NUM_REGS: usize = 8;

/// Runs instruction selection and register allocation over a module.
pub fn codegen(module: &Module) -> AsmOutput {
    let mut out = AsmOutput::default();
    for f in &module.functions {
        merge_asm(&mut out, codegen_one(f));
    }
    out
}

/// Code generation for a single function into a fresh output.
///
/// Codegen state (registers, spill slots, liveness) is entirely
/// function-local, so whole-module [`codegen`] is exactly the in-order
/// merge of these partials — the invariant the incremental compiler's
/// per-function artifact cache relies on.
pub(crate) fn codegen_one(f: &IrFunction) -> AsmOutput {
    let mut out = AsmOutput::default();
    out.features.push(feature_hash_str(&f.name));
    codegen_function(f, &mut out);
    out
}

/// Appends one function's partial output onto an accumulating module output.
pub(crate) fn merge_asm(out: &mut AsmOutput, part: AsmOutput) {
    out.insts.extend(part.insts);
    out.spills += part.spills;
    out.peak_pressure = out.peak_pressure.max(part.peak_pressure);
    out.features.extend(part.features);
}

fn codegen_function(f: &IrFunction, out: &mut AsmOutput) {
    // Liveness approximation: last use index of each temp across the linear
    // instruction order (blocks concatenated).
    let mut order: Vec<(&Inst, BlockId)> = Vec::new();
    for b in &f.blocks {
        for i in &b.insts {
            order.push((i, b.id));
        }
    }
    let mut last_use: FxHashMap<Temp, usize> = FxHashMap::default();
    for (idx, (inst, _)) in order.iter().enumerate() {
        for v in inst.uses() {
            if let Value::Temp(t) = v {
                last_use.insert(*t, idx);
            }
        }
        if let Some(d) = inst.def() {
            last_use.entry(d).or_insert(idx);
        }
    }
    for b in &f.blocks {
        let term_uses: Vec<Temp> = match &b.term {
            Terminator::Branch {
                cond: Value::Temp(t),
                ..
            } => vec![*t],
            Terminator::Return(Some(Value::Temp(t))) => vec![*t],
            Terminator::Switch {
                value: Value::Temp(t),
                ..
            } => vec![*t],
            _ => vec![],
        };
        for t in term_uses {
            last_use.insert(t, usize::MAX);
        }
    }

    // Linear scan with NUM_REGS registers.
    let mut reg_of: FxHashMap<Temp, u8> = FxHashMap::default();
    let mut spill_slot: FxHashMap<Temp, u32> = FxHashMap::default();
    let mut free: Vec<u8> = (0..NUM_REGS as u8).rev().collect();
    let mut live: Vec<(Temp, usize)> = Vec::new(); // (temp, last use)
    let mut next_spill = 0u32;
    let mut pressure_peak = 0usize;

    let mut alloc = |t: Temp,
                     idx: usize,
                     free: &mut Vec<u8>,
                     live: &mut Vec<(Temp, usize)>,
                     reg_of: &mut FxHashMap<Temp, u8>,
                     spill_slot: &mut FxHashMap<Temp, u32>,
                     out: &mut AsmOutput|
     -> u8 {
        // Expire dead intervals.
        live.retain(|(lt, end)| {
            if *end < idx {
                if let Some(r) = reg_of.remove(lt) {
                    free.push(r);
                }
                false
            } else {
                true
            }
        });
        if let Some(r) = reg_of.get(&t) {
            return *r;
        }
        let end = last_use.get(&t).copied().unwrap_or(idx);
        let r = match free.pop() {
            Some(r) => r,
            None => {
                // Spill the interval that ends furthest away.
                let (victim_pos, _) = live
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (_, e))| *e)
                    .expect("live nonempty when out of registers");
                let (victim, _) = live.swap_remove(victim_pos);
                let r = reg_of.remove(&victim).expect("victim has register");
                let slot = next_spill;
                next_spill += 1;
                spill_slot.insert(victim, slot);
                out.insts.push(AsmInst::Spill(r, slot));
                out.spills += 1;
                out.features.push(feature_hash(&[200, slot.min(16) as u64]));
                r
            }
        };
        reg_of.insert(t, r);
        live.push((t, end));
        pressure_peak = pressure_peak.max(live.len());
        r
    };

    let mut idx = 0usize;
    for b in &f.blocks {
        out.insts.push(AsmInst::Label(b.id.0));
        for inst in &b.insts {
            // Materialize operands.
            let mut operand = |v: &Value,
                               free: &mut Vec<u8>,
                               live: &mut Vec<(Temp, usize)>,
                               reg_of: &mut FxHashMap<Temp, u8>,
                               spill_slot: &mut FxHashMap<Temp, u32>,
                               out: &mut AsmOutput|
             -> u8 {
                match v {
                    Value::Temp(t) => {
                        if let Some(slot) = spill_slot.get(t).copied() {
                            let r = alloc(*t, idx, free, live, reg_of, spill_slot, out);
                            out.insts.push(AsmInst::Reload(r, slot));
                            spill_slot.remove(t);
                            r
                        } else {
                            alloc(*t, idx, free, live, reg_of, spill_slot, out)
                        }
                    }
                    Value::Int(c) => {
                        let t = Temp(u32::MAX - (idx as u32 % 1024));
                        let r = alloc(t, idx, free, live, reg_of, spill_slot, out);
                        out.insts.push(AsmInst::LoadImm(r, *c));
                        r
                    }
                    Value::Float(fl) => {
                        let t = Temp(u32::MAX - 2048 - (idx as u32 % 1024));
                        let r = alloc(t, idx, free, live, reg_of, spill_slot, out);
                        out.insts.push(AsmInst::LoadImm(r, fl.to_bits() as i64));
                        r
                    }
                    Value::Slot(s) | Value::Str(s) => {
                        let t = Temp(u32::MAX - 4096 - (idx as u32 % 1024));
                        let r = alloc(t, idx, free, live, reg_of, spill_slot, out);
                        out.insts.push(AsmInst::Ld(r, s.clone()));
                        r
                    }
                    Value::Undef => {
                        let t = Temp(u32::MAX - 8192 - (idx as u32 % 1024));
                        let r = alloc(t, idx, free, live, reg_of, spill_slot, out);
                        out.insts.push(AsmInst::LoadImm(r, 0));
                        r
                    }
                }
            };
            match inst {
                Inst::Bin { dst, op, a, b: rhs } => {
                    let ra = operand(a, &mut free, &mut live, &mut reg_of, &mut spill_slot, out);
                    let rb = operand(rhs, &mut free, &mut live, &mut reg_of, &mut spill_slot, out);
                    let rd = alloc(
                        *dst,
                        idx,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    out.insts.push(AsmInst::Alu(*op, rd, ra, rb));
                    out.features.push(feature_hash(&[201, op.code()]));
                }
                Inst::Un { dst, op, a } => {
                    let ra = operand(a, &mut free, &mut live, &mut reg_of, &mut spill_slot, out);
                    let rd = alloc(
                        *dst,
                        idx,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    // Unary ops select to ALU forms against an immediate.
                    let selected = match op {
                        UnOp::Neg => AsmInst::Alu(BinOp::Sub, rd, 0, ra),
                        UnOp::Not => AsmInst::Alu(BinOp::Xor, rd, ra, ra),
                        UnOp::LogNot => AsmInst::Alu(BinOp::CmpEq, rd, ra, ra),
                        UnOp::IntCast | UnOp::FloatCast => AsmInst::Mov(rd, ra),
                    };
                    out.insts.push(selected);
                    out.features.push(feature_hash(&[202, *op as u64]));
                }
                Inst::Load { dst, slot, .. } => {
                    let rd = alloc(
                        *dst,
                        idx,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    out.insts.push(AsmInst::Ld(rd, slot.clone()));
                }
                Inst::Store { slot, value, .. } => {
                    let rv = operand(
                        value,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    out.insts.push(AsmInst::St(slot.clone(), rv));
                }
                Inst::LoadIdx { dst, base, index } => {
                    let ri = operand(
                        index,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    let rd = alloc(
                        *dst,
                        idx,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    out.insts.push(AsmInst::LdIdx(rd, base.clone(), ri));
                    out.features.push(feature_hash(&[203]));
                }
                Inst::StoreIdx { base, index, value } => {
                    let ri = operand(
                        index,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    let rv = operand(
                        value,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    out.insts.push(AsmInst::StIdx(base.clone(), ri, rv));
                }
                Inst::AddrOf { dst, slot } => {
                    let rd = alloc(
                        *dst,
                        idx,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    out.insts.push(AsmInst::Ld(rd, format!("&{slot}")));
                    out.features.push(feature_hash(&[204]));
                }
                Inst::LoadPtr { dst, ptr } => {
                    let rp = operand(ptr, &mut free, &mut live, &mut reg_of, &mut spill_slot, out);
                    let rd = alloc(
                        *dst,
                        idx,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    out.insts.push(AsmInst::LdIdx(rd, "*".into(), rp));
                }
                Inst::StorePtr { ptr, value } => {
                    let rp = operand(ptr, &mut free, &mut live, &mut reg_of, &mut spill_slot, out);
                    let rv = operand(
                        value,
                        &mut free,
                        &mut live,
                        &mut reg_of,
                        &mut spill_slot,
                        out,
                    );
                    out.insts.push(AsmInst::StIdx("*".into(), rp, rv));
                }
                Inst::Call { dst, callee, args } => {
                    for a in args {
                        let _ = operand(a, &mut free, &mut live, &mut reg_of, &mut spill_slot, out);
                    }
                    let rd = match dst {
                        Some(d) => alloc(
                            *d,
                            idx,
                            &mut free,
                            &mut live,
                            &mut reg_of,
                            &mut spill_slot,
                            out,
                        ),
                        None => 0,
                    };
                    out.insts.push(AsmInst::CallSym(callee.clone(), rd));
                    out.features.push(feature_hash(&[
                        205,
                        args.len() as u64,
                        u64::from(dst.is_some()),
                    ]));
                }
            }
            idx += 1;
        }
        match &b.term {
            Terminator::Jump(t) => out.insts.push(AsmInst::Jmp(t.0)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let rc = match cond {
                    Value::Temp(t) => reg_of.get(t).copied().unwrap_or(0),
                    _ => 0,
                };
                out.insts.push(AsmInst::Jnz(rc, then_bb.0));
                out.insts.push(AsmInst::Jmp(else_bb.0));
                out.features.push(feature_hash(&[206]));
            }
            Terminator::Switch { cases, default, .. } => {
                // Dense switches select a jump table, sparse ones a chain.
                let dense = cases.len() >= 4;
                out.features.push(feature_hash(&[
                    207,
                    u64::from(dense),
                    cases.len().min(32) as u64,
                ]));
                for (_, t) in cases {
                    out.insts.push(AsmInst::Jnz(0, t.0));
                }
                out.insts.push(AsmInst::Jmp(default.0));
            }
            Terminator::Return(_) => out.insts.push(AsmInst::Ret),
            Terminator::Unreachable => {}
        }
    }
    out.peak_pressure = out.peak_pressure.max(pressure_peak);
    out.features.push(feature_hash(&[
        208,
        f.blocks.len().min(64) as u64,
        (f.temp_count / 8).min(32) as u64,
    ]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use metamut_lang::compile;

    fn gen(src: &str) -> AsmOutput {
        let (ast, sema) = compile(src).expect("source compiles");
        let m = lower(&ast, &sema).module;
        codegen(&m)
    }

    #[test]
    fn emits_code_for_simple_fn() {
        let out = gen("int f(int a, int b) { return a + b * 2; }");
        assert!(out.insts.len() > 5);
        assert!(out.insts.iter().any(|i| matches!(i, AsmInst::Ret)));
        assert!(out
            .insts
            .iter()
            .any(|i| matches!(i, AsmInst::Alu(BinOp::Mul, ..))));
        assert!(!out.features.is_empty());
    }

    #[test]
    fn branches_lower_to_jumps() {
        let out = gen("int f(int a) { if (a) return 1; return 0; }");
        assert!(out.insts.iter().any(|i| matches!(i, AsmInst::Jnz(..))));
        assert!(out.insts.iter().any(|i| matches!(i, AsmInst::Jmp(_))));
        assert!(out.insts.iter().any(|i| matches!(i, AsmInst::Label(_))));
    }

    #[test]
    fn register_pressure_triggers_spills() {
        // A right-nested expression keeps every left operand live while the
        // right subtree evaluates.
        let mut body = String::from("int f(int a) { int s = 0; ");
        for i in 0..14 {
            body.push_str(&format!("int v{i} = a + {i}; "));
        }
        body.push_str("s = ");
        for i in 0..14 {
            body.push_str(&format!("(v{i} + "));
        }
        body.push('a');
        for _ in 0..14 {
            body.push(')');
        }
        body.push_str("; return s; }");
        let out = gen(&body);
        assert!(
            out.spills > 0 || out.peak_pressure >= NUM_REGS,
            "spills={} pressure={}",
            out.spills,
            out.peak_pressure
        );
    }

    #[test]
    fn calls_select_call_instructions() {
        let out = gen("int f(void) { return abs(-3) + abs(4); }");
        let calls = out
            .insts
            .iter()
            .filter(|i| matches!(i, AsmInst::CallSym(name, _) if name == "abs"))
            .count();
        assert_eq!(calls, 2);
    }

    #[test]
    fn deterministic_output() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }";
        let a = gen(src);
        let b = gen(src);
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.spills, b.spills);
    }
}
