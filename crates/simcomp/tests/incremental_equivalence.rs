//! Property: incremental mutant compilation is bit-identical to cold.
//!
//! For randomly mutated seeds — statement splices, line deletions, line
//! duplications, whole-line rewrites — and every supported configuration
//! (Gcc/Clang × O0/O2/O3), compiling the mutant against its seed's
//! [`Baseline`] must reproduce the cold [`Compiler::compile`] result
//! exactly: same outcome (success stats, rejection, or crash identity)
//! and the same coverage *set*. The mutations deliberately produce a mix
//! of fast-path edits (single-function body changes), guard-chain
//! fallbacks (signature changes, multi-declaration edits, parse and sema
//! failures), and crashing mutants, so both sides of every soundness
//! guard are exercised.

use metamut_simcomp::{coverage_equal, Baseline, CompileOptions, Compiler, Profile};
use proptest::collection::vec;
use proptest::proptest;
use proptest::test_runner::ProptestConfig;
use std::sync::OnceLock;

/// A campaign-shaped seed: typedef, globals, a record, helpers, loops.
/// Cacheable (all baseline self-checks pass) under every configuration.
const SEED: &str = "\
typedef int T;
int g = 3;
volatile int vg;
struct P { int x; int y; };
static int helper(T a, T b) { return a * b + g; }
int fold(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + helper(i, i + 1); }
    return acc;
}
int weigh(int n) {
    int w = n;
    while (w > 1) { w = w - 2; vg = w; }
    return w + g;
}
int main(void) { struct P p; p.x = fold(4); p.y = helper(2, 3); vg = p.x; return p.x + p.y + weigh(9); }
";

/// Replacement fragments: single-function edits, crash triggers (deep
/// ternaries, volatile floods), signature changes, and outright garbage.
const FRAGMENTS: &[&str] = &[
    "    g = g + 1;",
    "    return 0;",
    "    vg = vg + 1; vg = vg + 1;",
    "    int q = a ? b ? 1 : 2 : a ? 3 : b ? 4 : 5 ? 6 : 7;",
    "volatile int extra_a; volatile int extra_b; volatile int extra_c;",
    "static long helper(T a, T b) { return a - b; }",
    "int fold(int n, int m) { return n + m; }",
    "    while (1) { }",
    "    syntax error here",
    "    p.x = no_such_symbol;",
    "",
];

/// Applies `(selector, line)` edits one after another. Each edit rewrites,
/// duplicates, deletes, or splices a fragment after one line of the
/// current text, so successive edits compound into multi-line mutants.
fn mutate(seed: &str, edits: &[(usize, usize)]) -> String {
    let mut lines: Vec<String> = seed.lines().map(str::to_string).collect();
    for &(selector, slot) in edits {
        if lines.is_empty() {
            break;
        }
        let line = slot % lines.len();
        let fragment = FRAGMENTS[selector % FRAGMENTS.len()];
        match (selector / FRAGMENTS.len()) % 4 {
            0 => lines[line] = fragment.to_string(),
            1 => lines.insert(line, fragment.to_string()),
            2 => {
                let dup = lines[line].clone();
                lines.insert(line, dup);
            }
            _ => {
                lines.remove(line);
            }
        }
    }
    lines.join("\n") + "\n"
}

fn configurations() -> &'static [(Compiler, Baseline)] {
    static CONFIGS: OnceLock<Vec<(Compiler, Baseline)>> = OnceLock::new();
    CONFIGS.get_or_init(|| {
        let mut out = Vec::new();
        for profile in [Profile::Gcc, Profile::Clang] {
            for options in [
                CompileOptions::o0(),
                CompileOptions::o2(),
                CompileOptions::o3(),
            ] {
                let compiler = Compiler::new(profile, options);
                let baseline =
                    Baseline::build(&compiler, SEED).expect("the seed must be cacheable");
                out.push((compiler, baseline));
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn incremental_equals_cold_on_random_mutants(
        selectors in vec(0usize..10_000, 1..5),
        slots in vec(0usize..10_000, 1..5),
    ) {
        let edits: Vec<(usize, usize)> = selectors
            .iter()
            .copied()
            .zip(slots.iter().copied())
            .collect();
        let mutant = mutate(SEED, &edits);
        for (compiler, baseline) in configurations() {
            let cold = compiler.compile(&mutant);
            let inc = compiler.compile_incremental(&mutant, baseline);
            assert_eq!(
                inc.outcome, cold.outcome,
                "outcome diverged under {:?} {:?}:\n{mutant}",
                compiler.profile(),
                compiler.options(),
            );
            assert!(
                coverage_equal(&inc.coverage, &cold.coverage),
                "coverage diverged ({} vs {} branches) under {:?} {:?}:\n{mutant}",
                inc.coverage.count(),
                cold.coverage.count(),
                compiler.profile(),
                compiler.options(),
            );
        }
    }
}
