//! Integration tests over the compiler-under-test pipeline: pass
//! correctness on lowered programs, back-end structural integrity, and the
//! component-depth behavior the evaluation relies on.

use metamut_simcomp::backend::{codegen, AsmInst};
use metamut_simcomp::ir::{Terminator, Value};
use metamut_simcomp::lower::lower;
use metamut_simcomp::passes::{optimize, OptFlags};
use metamut_simcomp::{CompileOptions, Compiler, CoverageMap, Outcome, Profile, Stage};

fn module_for(src: &str) -> metamut_simcomp::ir::Module {
    let (ast, sema) = metamut_lang::compile(src).expect("test program compiles");
    lower(&ast, &sema).module
}

#[test]
fn constant_switch_is_folded_away() {
    let mut m = module_for(
        "int f(void) { switch (2) { case 1: return 10; case 2: return 20; default: return 0; } }",
    );
    let report = optimize(&mut m, 2, &OptFlags::default());
    assert!(report
        .pass_stats
        .iter()
        .any(|(n, c)| *n == "const-fold" && *c > 0));
    let f = m.function("f").unwrap();
    // No Switch terminator survives constant dispatch.
    assert!(f
        .blocks
        .iter()
        .all(|b| !matches!(b.term, Terminator::Switch { .. })));
}

#[test]
fn optimization_shrinks_code() {
    let src = r#"
int f(int a) {
    int dead = 3 * 7 + 2;
    int x = 1 + 2 + 3;
    if (0) { a = a * dead; }
    return a + x;
}
"#;
    let mut o0 = module_for(src);
    let mut o2 = module_for(src);
    optimize(&mut o0, 0, &OptFlags::default());
    optimize(&mut o2, 2, &OptFlags::default());
    assert!(
        o2.inst_count() < o0.inst_count(),
        "O2 {} !< O0 {}",
        o2.inst_count(),
        o0.inst_count()
    );
}

#[test]
fn inliner_preserves_temp_ssa_discipline() {
    let mut m = module_for(
        "int g_v = 2; int get(void) { return g_v + 1; } int f(void) { return get() * get(); }",
    );
    let mut report = metamut_simcomp::passes::OptReport::default();
    let inlined = metamut_simcomp::passes::inline_trivial(&mut m, &mut report);
    assert_eq!(inlined, 2);
    // Every temp is defined at most once across the function.
    let f = m.function("f").unwrap();
    let mut defs = std::collections::HashSet::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.def() {
                assert!(defs.insert(d), "temp {d:?} defined twice after inlining");
            }
        }
    }
    // And every used temp is defined.
    for b in &f.blocks {
        for i in &b.insts {
            for u in i.uses() {
                if let Value::Temp(t) = u {
                    assert!(defs.contains(t), "use of undefined {t:?}");
                }
            }
        }
    }
}

#[test]
fn backend_emits_label_for_every_jump_target() {
    let out = codegen(&module_for(
        "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } switch (s & 3) { case 0: s++; break; default: s--; } return s; }",
    ));
    let labels: std::collections::HashSet<u32> = out
        .insts
        .iter()
        .filter_map(|i| match i {
            AsmInst::Label(l) => Some(*l),
            _ => None,
        })
        .collect();
    for i in &out.insts {
        match i {
            AsmInst::Jmp(t) | AsmInst::Jnz(_, t) => {
                assert!(labels.contains(t), "jump to unemitted label {t}");
            }
            _ => {}
        }
    }
}

#[test]
fn deeper_stages_need_valid_programs() {
    let gcc = Compiler::new(Profile::Gcc, CompileOptions::o2());
    // Invalid input: coverage confined to the front end.
    let bad = gcc.compile("int f( { return }");
    assert!(matches!(bad.outcome, Outcome::Rejected { .. }));
    assert_eq!(bad.coverage.count_stage(Stage::Opt), 0);
    assert_eq!(bad.coverage.count_stage(Stage::BackEnd), 0);
    // Valid input: every stage contributes.
    let good = gcc.compile("int f(int a) { return a * 2; } int main(void) { return f(1); }");
    for stage in Stage::ALL {
        assert!(good.coverage.count_stage(stage) > 0, "{stage} empty");
    }
}

#[test]
fn profiles_share_coverage_geometry_but_not_bugs() {
    // The same valid program covers similar amounts on both profiles…
    let src = "int f(int a) { return a + 1; } int main(void) { return f(2); }";
    let g = Compiler::new(Profile::Gcc, CompileOptions::o2()).compile(src);
    let c = Compiler::new(Profile::Clang, CompileOptions::o2()).compile(src);
    assert_eq!(g.coverage.count(), c.coverage.count());
    // …but the planted-bug sets are disjoint by id.
    let gcc_ids: std::collections::HashSet<&str> = metamut_simcomp::bugs::catalog()
        .iter()
        .filter(|b| b.profile == Profile::Gcc)
        .map(|b| b.id)
        .collect();
    let clang_ids: std::collections::HashSet<&str> = metamut_simcomp::bugs::catalog()
        .iter()
        .filter(|b| b.profile == Profile::Clang)
        .map(|b| b.id)
        .collect();
    assert!(gcc_ids.is_disjoint(&clang_ids));
    assert!(gcc_ids.len() >= 15 && clang_ids.len() >= 15);
}

#[test]
fn lowering_handles_do_while_and_comma() {
    let m = module_for(
        "int f(int n) { int s = 0; do { s = (s + 1, s + 2); } while (s < n); return s; }",
    );
    let f = m.function("f").unwrap();
    assert!(f.blocks.len() >= 4);
    assert!(f.inst_count() >= 4);
}

#[test]
fn shared_coverage_across_compilers_accumulates() {
    let mut acc = CoverageMap::new();
    let gcc = Compiler::new(Profile::Gcc, CompileOptions::o2());
    let mut last = 0;
    for src in [
        "int a(void) { return 1; }",
        "double b(double x) { return x * 2.0; }",
        "int c(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
    ] {
        acc.merge(&gcc.compile(src).coverage);
        assert!(acc.count() > last);
        last = acc.count();
    }
}

#[test]
fn hang_bugs_report_instead_of_looping() {
    // The vectorizer-hang predicate fires and returns promptly — the
    // simulation reports Hang without spinning.
    let src = r#"
int r; int r_0;
void f(void) {
    int n = 0;
    while (--n) { r_0 += r; r += r; r += r; r += r; r += r; }
}
"#;
    let opts = CompileOptions {
        opt_level: 3,
        flags: OptFlags {
            no_tree_vrp: true,
            ..Default::default()
        },
    };
    let start = std::time::Instant::now();
    let result = Compiler::new(Profile::Gcc, opts).compile(src);
    assert!(result.outcome.crash().is_some());
    assert!(start.elapsed().as_secs() < 5);
}
