//! Property: query-engine mutant compilation is bit-identical to cold.
//!
//! For random k-declaration mutants (k = 1..4) of a campaign-shaped seed
//! and every supported configuration (Gcc/Clang × O0/O2/O3), compiling
//! the mutant through the shared [`QueryCache`] must reproduce the cold
//! [`Compiler::compile`] result exactly: same outcome (success stats,
//! rejection, or crash signature) and the same coverage *set* (which is
//! derived from the per-stage feature streams). The replacement pool
//! deliberately mixes fast-path edits (body rewrites, volatile floods,
//! crash triggers) with guard-chain fallbacks (signature changes, parse
//! and sema failures, declaration deletions), so both the green path and
//! every cold fallback are exercised against the same oracle.
//!
//! All configurations share one [`QueryDb`], mirroring how campaign
//! workers, the reduction oracle, and the UB gate share memos in
//! production.

use metamut_simcomp::QueryDb;
use metamut_simcomp::{coverage_equal, CompileOptions, Compiler, Outcome, Profile, QueryCache};
use proptest::collection::vec;
use proptest::proptest;
use proptest::test_runner::ProptestConfig;
use std::sync::{Arc, OnceLock};

/// The seed, one declaration per slot. Joined with newlines it is
/// cacheable (all slot self-checks pass) under every configuration.
const DECLS: &[&str] = &[
    "typedef int T;",
    "int g = 3;",
    "volatile int vg;",
    "struct P { int x; int y; };",
    "static int helper(T a, T b) { return a * b + g; }",
    "int fold(int n) {\n    int acc = 0;\n    for (int i = 0; i < n; i = i + 1) { acc = acc + helper(i, i + 1); }\n    return acc;\n}",
    "int weigh(int n) {\n    int w = n;\n    while (w > 1) { w = w - 2; vg = w; }\n    return w + g;\n}",
    "int main(void) { struct P p; p.x = fold(4); p.y = helper(2, 3); vg = p.x; return p.x + p.y + weigh(9); }",
];

/// Whole-declaration replacements: body rewrites that keep the fast path
/// green, crash triggers (deep ternaries, volatile floods), and
/// guard-chain breakers (signature changes, parse/sema failures,
/// deletions that change the declaration count).
const REPLACEMENTS: &[&str] = &[
    "static int helper(T a, T b) { return a + b * 2 - g; }",
    "int fold(int n) { int acc = 1; for (int i = 0; i < n; i = i + 1) { acc = acc * 2 + vg; } return acc; }",
    "int weigh(int n) { int q = n ? n ? 1 : 2 : n ? 3 : n ? 4 : 5 ? 6 : 7; return q; }",
    "int main(void) { vg = g; vg = vg + 1; vg = vg + 1; return weigh(3) + fold(2); }",
    "static long helper(T a, T b) { return a - b; }",
    "volatile int extra_a; volatile int extra_b;",
    "int broken( { syntax",
    "int weigh(int n) { return no_such_symbol + n; }",
    "",
];

/// Replaces, for each `(slot, choice)` edit, one declaration of the seed
/// with a pool entry. Distinct slots compound into k-declaration mutants;
/// repeated slots overwrite (a smaller effective k).
fn mutate(edits: &[(usize, usize)]) -> String {
    let mut decls: Vec<&str> = DECLS.to_vec();
    for &(slot, choice) in edits {
        decls[slot % DECLS.len()] = REPLACEMENTS[choice % REPLACEMENTS.len()];
    }
    decls.join("\n") + "\n"
}

fn configurations() -> &'static [(Compiler, QueryCache)] {
    static CONFIGS: OnceLock<Vec<(Compiler, QueryCache)>> = OnceLock::new();
    CONFIGS.get_or_init(|| {
        let db = Arc::new(QueryDb::new());
        let mut out = Vec::new();
        for profile in [Profile::Gcc, Profile::Clang] {
            for options in [
                CompileOptions::o0(),
                CompileOptions::o2(),
                CompileOptions::o3(),
            ] {
                out.push((
                    Compiler::new(profile, options),
                    QueryCache::new(Arc::clone(&db)),
                ));
            }
        }
        out
    })
}

fn seed() -> String {
    DECLS.join("\n") + "\n"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn query_engine_equals_cold_on_random_mutants(
        slots in vec(0usize..10_000, 1..5),
        choices in vec(0usize..10_000, 1..5),
    ) {
        let edits: Vec<(usize, usize)> = slots
            .iter()
            .copied()
            .zip(choices.iter().copied())
            .collect();
        let seed = seed();
        let mutant = mutate(&edits);
        for (compiler, cache) in configurations() {
            let cold = compiler.compile(&mutant);
            let queried = cache.compile(compiler, &seed, &mutant);
            assert_eq!(
                queried.outcome, cold.outcome,
                "outcome diverged under {:?} {:?}:\n{mutant}",
                compiler.profile(),
                compiler.options(),
            );
            if let (Outcome::Crash(q), Outcome::Crash(c)) = (&queried.outcome, &cold.outcome) {
                assert_eq!(
                    q.signature(),
                    c.signature(),
                    "crash signature diverged under {:?} {:?}:\n{mutant}",
                    compiler.profile(),
                    compiler.options(),
                );
            }
            assert!(
                coverage_equal(&queried.coverage, &cold.coverage),
                "coverage diverged ({} vs {} branches) under {:?} {:?}:\n{mutant}",
                queried.coverage.count(),
                cold.coverage.count(),
                compiler.profile(),
                compiler.options(),
            );
        }
    }
}
