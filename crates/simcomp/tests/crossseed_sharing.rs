//! Properties of cross-seed memo sharing in the content-addressed query
//! engine.
//!
//! Positive: two seeds that share byte-identical declarations must serve
//! each other's stage memos — the second seed's slot build rides the
//! first's parse/sema/lower work (observable as cross-seed hits) — while
//! every compile stays bit-identical to cold [`Compiler::compile`].
//!
//! Negative: α-renamed near-misses (same declaration shape, different
//! identifiers) must never alias. The content keys hash the declaration
//! text itself, so a renamed variable is a different key from the parse
//! stage down: no memo hits, no cross-seed hits, no way for one program's
//! artifacts to leak into the other's result.

use metamut_simcomp::{coverage_equal, CompileOptions, Compiler, Profile, QueryCache, QueryDb};
use proptest::proptest;
use proptest::test_runner::ProptestConfig;
use std::sync::Arc;

/// Self-contained declarations (no cross-references), so any subset in
/// pool order is a valid shared prefix.
const POOL: &[&str] = &[
    "typedef int word;",
    "int shared_g = 7;",
    "volatile int shared_v;",
    "struct Pair { int a; int b; };",
    "static int twice(int x) { return x + x; }",
    "int clamp(int x) { if (x > 100) { return 100; } if (x < 0) { return 0; } return x; }",
];

/// Selects a subset of the pool, in pool order, as the shared prefix.
fn prefix(mask: u8) -> Vec<&'static str> {
    POOL.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, d)| *d)
        .collect()
}

fn program(prefix: &[&str], tail: &str) -> String {
    let mut decls = prefix.to_vec();
    decls.push(tail);
    decls.join("\n") + "\n"
}

/// Compiles `mutant` against `seed` through the cache and asserts the
/// result is bit-identical to a cold compile.
fn check_matches_cold(compiler: &Compiler, cache: &QueryCache, seed: &str, mutant: &str) {
    let cold = compiler.compile(mutant);
    let queried = cache.compile(compiler, seed, mutant);
    assert_eq!(
        queried.outcome, cold.outcome,
        "outcome diverged from cold:\n{mutant}"
    );
    assert!(
        coverage_equal(&queried.coverage, &cold.coverage),
        "coverage diverged from cold ({} vs {} branches):\n{mutant}",
        queried.coverage.count(),
        cold.coverage.count(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Seeds sharing a byte-identical declaration prefix produce
    /// cross-seed hits, and every compile — including the slot builds and
    /// the memo-served mutants — matches cold exactly (cross-check runs
    /// on every compile here, so `mismatches` is a full oracle).
    #[test]
    fn byte_identical_declarations_share_across_seeds(
        mask in 1u8..64,
        k in 0i64..50,
    ) {
        let shared = prefix(mask);
        let tail_a = format!(
            "int enter_a(int n) {{ int s = 0; for (int i = 0; i < n; i = i + 1) {{ s = s + i; }} return s + {k}; }}"
        );
        let tail_b = format!(
            "int enter_b(int n) {{ int s = {k}; while (n > 0) {{ s = s + n; n = n - 1; }} return s; }}"
        );
        let seed_a = program(&shared, &tail_a);
        let seed_b = program(&shared, &tail_b);
        let mutant_a = program(&shared, &tail_a.replace("s + i", "s + i * 2"));
        let mutant_b = program(&shared, &tail_b.replace("s + n", "s - n"));

        let cache = QueryCache::new(Arc::new(QueryDb::new())).with_cross_check(1);
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());

        check_matches_cold(&compiler, &cache, &seed_a, &mutant_a);
        let xs_after_a = cache.cross_seed_hits();
        check_matches_cold(&compiler, &cache, &seed_b, &mutant_b);

        // Seed B's slot build re-derived the shared prefix from seed A's
        // memos: every shared declaration contributes at least a
        // parse-stage cross-seed hit.
        assert!(
            cache.cross_seed_hits() > xs_after_a,
            "no cross-seed hits for a {}-declaration shared prefix",
            shared.len(),
        );
        assert_eq!(cache.mismatches(), 0, "cross-check found a divergence");
    }

    /// α-renamed near-misses never alias: a program whose only difference
    /// is a renamed parameter/local shares no memos with the original.
    #[test]
    fn alpha_renamed_near_misses_never_share(
        a in 0usize..6,
        b_offset in 1usize..6,
        k in 1i64..40,
    ) {
        const NAMES: &[&str] = &["value", "datum", "input_n", "count", "accum", "width"];
        let b = (a + b_offset) % NAMES.len();
        let renamed = |name: &str| {
            format!(
                "int compute(int {name}) {{\n    int doubled = {name} + {name};\n    int out = doubled * {k};\n    return out - {name};\n}}\n"
            )
        };
        let prog_a = renamed(NAMES[a]);
        let prog_b = renamed(NAMES[b]);

        let db = Arc::new(QueryDb::new());
        let cache = QueryCache::new(Arc::clone(&db));
        let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());

        let cold_a = compiler.compile(&prog_a);
        let warm_a = cache.compile_program(&compiler, &prog_a);
        assert_eq!(warm_a.outcome, cold_a.outcome);
        assert!(coverage_equal(&warm_a.coverage, &cold_a.coverage));

        // The renamed twin computes everything fresh: not a single stage
        // memo from program A may serve program B.
        let hits_after_a = db.hits();
        let cold_b = compiler.compile(&prog_b);
        let warm_b = cache.compile_program(&compiler, &prog_b);
        assert_eq!(warm_b.outcome, cold_b.outcome);
        assert!(coverage_equal(&warm_b.coverage, &cold_b.coverage));
        assert_eq!(
            db.hits(),
            hits_after_a,
            "α-renamed program aliased a memo:\n{prog_a}vs\n{prog_b}"
        );
        assert_eq!(cache.cross_seed_hits(), 0);

        // Control: the zero-hit assertion above is meaningful — an exact
        // re-compile of program A does hit the warm memos.
        let again = cache.compile_program(&compiler, &prog_a);
        assert_eq!(again.outcome, cold_a.outcome);
        assert!(db.hits() > hits_after_a, "re-compile of A should hit");
    }
}
