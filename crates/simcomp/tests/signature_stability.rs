//! Property: the crash signature (top-two-frame criterion) is invariant
//! under whitespace- and comment-preserving rewrites of the witness.
//!
//! This is what makes signature-keyed triage and reduction sound: two
//! mutants that differ only in layout or comment residue must bucket to
//! the same bug, and the reducer's oracle must not be distracted by the
//! formatting churn its own span edits leave behind.
//!
//! The inserted comments draw from a deliberately inert alphabet — no
//! alphanumerics, digits, parens, braces, or quotes — because the raw
//! byte-level feature scanner (`features::raw_features`) does not strip
//! comments; text that *changed* identifier runs or nesting depths could
//! legitimately flip a planted front-end bug on or off.

use metamut_simcomp::{CompileOptions, Compiler, OptFlags, Profile};
use proptest::collection::vec;
use proptest::proptest;

/// The four §5 case-study trigger cores, each a standalone crasher.
fn crashing_witnesses() -> Vec<(&'static str, Profile, CompileOptions)> {
    vec![
        (
            "int r;\nint r_0;\nvoid f(void) {\n    int n = 0;\n    while (--n) {\n        r_0 += r;\n        r += r; r += r; r += r; r += r; r += r;\n    }\n}\n",
            Profile::Gcc,
            CompileOptions {
                opt_level: 3,
                flags: OptFlags {
                    no_tree_vrp: true,
                    ..Default::default()
                },
            },
        ),
        (
            "long long combinedVar_1;\nint *bar(void) {\n    return (int *)&__imag__ (*(_Complex double *)((char *)&combinedVar_1 + 16));\n}\n",
            Profile::Gcc,
            CompileOptions::o0(),
        ),
        (
            "void helper(int *x, int *y) { }\nvoid foo(int x[64], int y[64]) {\n    helper(x, y);\ngt:\n    ;\nlt:\n    ;\n}\nint main(void) { return 0; }\n",
            Profile::Clang,
            CompileOptions::o2(),
        ),
        (
            "foo(int *ptr) { *ptr = (int) {{}, 0}; return 0; }\n",
            Profile::Clang,
            CompileOptions::o0(),
        ),
    ]
}

/// Applies comment/whitespace edits: each `(slot, text)` pair appends a
/// line comment, inserts a block-comment line, or inserts blank padding,
/// always at a line boundary so the token stream is untouched.
fn rewrite(witness: &str, edits: &[(usize, String)]) -> String {
    let mut lines: Vec<String> = witness.lines().map(|l| l.to_string()).collect();
    for (slot, text) in edits {
        let line = slot % lines.len();
        match (slot / lines.len()) % 3 {
            0 => {
                lines[line].push_str("  // ");
                lines[line].push_str(text);
            }
            1 => lines.insert(line, format!("/* {text} */")),
            2 => lines.insert(line, format!("   \t{}", " ".repeat(text.len()))),
            _ => unreachable!(),
        }
    }
    lines.join("\n") + "\n"
}

proptest! {
    #[test]
    fn signature_invariant_under_comment_and_whitespace_rewrites(
        slots in vec(0usize..10_000, 1..10),
        texts in vec("[-!~+=. ]{1,12}", 1..10),
    ) {
        let edits: Vec<(usize, String)> = slots
            .iter()
            .copied()
            .zip(texts.iter().cloned())
            .collect();
        for (witness, profile, options) in crashing_witnesses() {
            let compiler = Compiler::new(profile, options);
            let original = compiler
                .compile(witness)
                .outcome
                .crash()
                .expect("witness core must crash")
                .clone();

            let rewritten = rewrite(witness, &edits);
            let after = compiler
                .compile(&rewritten)
                .outcome
                .crash()
                .unwrap_or_else(|| {
                    panic!("rewrite stopped the crash:\n{rewritten}")
                })
                .clone();
            assert_eq!(
                after.signature(),
                original.signature(),
                "signature drifted under a layout-only rewrite:\n{rewritten}"
            );
            assert_eq!(after.bug_id, original.bug_id);
        }
    }
}
