//! `metamut` — command-line front door to the reproduction.
//!
//! ```text
//! metamut list                          # list the mutator library
//! metamut mutate FILE -m NAME [-s N]    # apply one mutator to a C file
//! metamut compile FILE [-p gcc|clang] [-O N] [--flags ...]
//! metamut generate [-n N] [-s N]        # run the MetaMut pipeline
//! metamut fuzz [-i N] [-s N] [-p gcc|clang] [-w N] [--no-dedup] [--no-incremental]
//!              [--no-ub-filter] [--no-interproc-gate] [--no-lint-penalty]
//!              [--query-cache-cap N] [--reduce]
//!              [--status-addr HOST:PORT]
//! metamut analyze FILE [--json]         # dataflow UB/validity findings
//! metamut reduce FILE [-p gcc|clang] [-O N] [--flags ...]   # minimize one crasher
//! metamut triage FILE... [-p gcc|clang] [-O N] [--out DIR] [--append]
//! metamut status ADDR [PATH]            # query a live campaign's HTTP endpoint
//! metamut report [--snapshot F] [--timeseries F] [--triage F] [--out F]
//! ```
//!
//! Observatory flags on any subcommand: `--trace-out PATH` (Chrome
//! trace-event JSON), `--timeseries-out PATH` (sampled series JSONL).

use metamut::prelude::*;
use metamut_fuzzing::mucfuzz::MuCFuzz;
use metamut_fuzzing::parallel::run_parallel_campaign;
use metamut_simcomp::OptFlags;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    // Global flags: --telemetry PATH (or METAMUT_TELEMETRY=PATH) streams
    // JSONL events to PATH plus a status line to stderr; --status-every
    // SECS (or METAMUT_STATUS_EVERY) retunes the status cadence (0 = off).
    let telemetry_path = metamut_telemetry::init_from_args(
        opt(rest, "--telemetry").as_deref(),
        opt(rest, "--status-every").and_then(|s| s.parse().ok()),
    );
    // Observatory outputs: --trace-out PATH writes a Chrome trace-event
    // JSON at exit; --timeseries-out PATH writes the sampled campaign
    // time-series as JSONL. Either flag enables telemetry on its own.
    metamut_telemetry::init_outputs(
        opt(rest, "--trace-out").as_deref(),
        opt(rest, "--timeseries-out").as_deref(),
    );
    let code = match cmd {
        "list" => list(),
        "mutate" => mutate(rest),
        "compile" => compile_cmd(rest),
        "generate" => generate(rest),
        "fuzz" => fuzz(rest),
        "analyze" => analyze_cmd(rest),
        "reduce" => reduce_cmd(rest),
        "triage" => triage_cmd(rest),
        "status" => status_cmd(rest),
        "report" => report_cmd(rest),
        "serve" => serve_cmd(rest),
        "submit" => submit_cmd(rest),
        "jobs" => jobs_cmd(rest),
        _ => {
            eprintln!(
                "usage: metamut <list|mutate|compile|generate|fuzz|analyze|reduce|triage|serve> [options]\n\
                 \n  list                         list the mutator library\
                 \n  mutate FILE -m NAME [-s N]   apply one mutator to a C file\
                 \n  compile FILE [-p gcc|clang] [-O N] [--no-tree-vrp] [--unroll-loops]\
                 \n  generate [-n N] [-s N]       run the MetaMut generation pipeline\
                 \n  fuzz [-i N] [-s N] [-p gcc|clang] [-w N] [--no-dedup]  run a μCFuzz campaign\
                 \n                               -w N: worker threads (0 = one per CPU; default 1)\
                 \n                               --no-incremental: compile every mutant cold\
                 \n                               --no-ub-filter: compile UB mutants too\
                 \n                               --no-interproc-gate: UB gate without call summaries\
                 \n                               --no-lint-penalty: uniform seed picks (ignore lints)\
                 \n                               --query-cache-cap N: cap cached seed slots (0 = unbounded)\
                 \n                                 (--baseline-cache-cap is a deprecated alias)\
                 \n                               --reduce: triage + reduce discovered crashes\
                 \n                               --reduce-out DIR: write triage.json/.md to DIR\
                 \n  analyze FILE [--json]        report dataflow UB/validity findings\
                 \n  reduce FILE [-p gcc|clang] [-O N] [--no-tree-vrp] [--unroll-loops]\
                 \n                               minimize one crashing program (stdout)\
                 \n  triage FILE... [-p gcc|clang] [-O N] [-w N] [--out DIR] [--append]\
                 \n                               bucket crashing files by signature and reduce each\
                 \n                               --append: merge into DIR/triage.json (and the\
                 \n                               telemetry snapshot in DIR/telemetry.json) from prior runs\
                 \n  status ADDR [PATH]           query a live campaign's HTTP status endpoint\
                 \n                               (PATH: /metrics, /timeseries, or /spans)\
                 \n  report [--snapshot F] [--timeseries F] [--triage F] [--out F]\
                 \n                               render a markdown campaign report\
                 \n  serve [--store DIR] [--addr HOST:PORT] [--http HOST:PORT] [-w N]\
                 \n        [--slice N] [--checkpoint-every N] [--addr-out FILE]\
                 \n                               run the multi-tenant fuzzing daemon\
                 \n  submit ADDR fuzz [-i N] [-s N] [-p gcc|clang] [-O N] [--reduce] [--wait]\
                 \n  submit ADDR <analyze|reduce> FILE / triage FILE...  submit a one-shot job\
                 \n  jobs ADDR [ID] [--status] [--cancel ID]  inspect or cancel daemon jobs\
                 \n  (any subcommand) --telemetry PATH  stream telemetry JSONL to PATH\
                 \n  (any subcommand) --status-every SECS  status-line cadence (0 = off)\
                 \n  (any subcommand) --trace-out PATH  write a Chrome trace-event JSON at exit\
                 \n  (any subcommand) --timeseries-out PATH  write sampled time-series JSONL at exit\
                 \n  (fuzz) --status-addr HOST:PORT  serve /metrics, /timeseries, /spans while fuzzing"
            );
            ExitCode::from(2)
        }
    };
    if let Some(path) = telemetry_path {
        // Flush the event log and leave a metrics snapshot next to it.
        if let Some(snapshot) = metamut_telemetry::global_snapshot_json() {
            let snap_path = path.with_extension("snapshot.json");
            if let Err(e) = std::fs::write(&snap_path, snapshot) {
                eprintln!("telemetry: cannot write {}: {e}", snap_path.display());
            }
        }
    }
    // Writes any --trace-out / --timeseries-out files and flushes sinks.
    metamut_telemetry::global_finalize();
    code
}

fn opt(rest: &[String], flag: &str) -> Option<String> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .cloned()
}

const VALUE_FLAGS: [&str; 28] = [
    "-m",
    "-s",
    "-p",
    "-O",
    "-i",
    "-n",
    "-w",
    "--workers",
    "--telemetry",
    "--status-every",
    "--out",
    "--reduce-out",
    "--query-cache-cap",
    "--baseline-cache-cap",
    "--trace-out",
    "--timeseries-out",
    "--status-addr",
    "--status-addr-out",
    "--snapshot",
    "--timeseries",
    "--triage",
    "--store",
    "--addr",
    "--http",
    "--slice",
    "--checkpoint-every",
    "--addr-out",
    "--cancel",
];

/// `--query-cache-cap N`, honoring `--baseline-cache-cap` as a deprecated
/// alias (with a warning) so existing scripts keep working.
fn query_cache_cap(rest: &[String]) -> usize {
    if let Some(v) = opt(rest, "--query-cache-cap").and_then(|s| s.parse().ok()) {
        return v;
    }
    match opt(rest, "--baseline-cache-cap").and_then(|s| s.parse().ok()) {
        Some(v) => {
            eprintln!("warning: --baseline-cache-cap is deprecated; use --query-cache-cap");
            v
        }
        None => 0,
    }
}

fn positionals(rest: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for a in rest {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with('-') {
            out.push(a);
        }
    }
    out
}

fn positional(rest: &[String]) -> Option<&String> {
    positionals(rest).into_iter().next()
}

fn list() -> ExitCode {
    let reg = metamut::mutators::full_registry();
    println!("{} mutators:", reg.len());
    for m in reg.iter() {
        let tag = match m.provenance {
            metamut::muast::Provenance::Supervised => "M_s",
            metamut::muast::Provenance::Unsupervised => "M_u",
        };
        println!(
            "  {:<34} [{:<10} {tag}]  {}",
            m.mutator.name(),
            m.mutator.category().to_string(),
            m.mutator.description()
        );
    }
    ExitCode::SUCCESS
}

fn mutate(rest: &[String]) -> ExitCode {
    let Some(file) = positional(rest) else {
        eprintln!("mutate: missing FILE");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mutate: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = opt(rest, "-s").and_then(|s| s.parse().ok()).unwrap_or(1);
    let reg = metamut::mutators::full_registry();
    let name = opt(rest, "-m");
    let entries: Vec<_> = match &name {
        Some(n) => match reg.get(n) {
            Some(e) => vec![e.clone()],
            None => {
                eprintln!("mutate: unknown mutator {n} (try `metamut list`)");
                return ExitCode::from(2);
            }
        },
        None => reg.iter().cloned().collect(),
    };
    for attempt in 0..200u64 {
        let e = &entries[(seed.wrapping_add(attempt) % entries.len() as u64) as usize];
        match mutate_source(e.mutator.as_ref(), &src, seed.wrapping_add(attempt)) {
            Ok(MutationOutcome::Mutated(m)) => {
                eprintln!("-- applied {}", e.mutator.name());
                print!("{m}");
                return ExitCode::SUCCESS;
            }
            _ => continue,
        }
    }
    eprintln!("mutate: no mutator applied (is the input valid C?)");
    ExitCode::FAILURE
}

fn parse_profile(rest: &[String]) -> Profile {
    match opt(rest, "-p").as_deref() {
        Some("clang") => Profile::Clang,
        _ => Profile::Gcc,
    }
}

fn parse_options(rest: &[String], default_opt: u8) -> CompileOptions {
    CompileOptions {
        opt_level: opt(rest, "-O")
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_opt),
        flags: OptFlags {
            no_tree_vrp: rest.iter().any(|a| a == "--no-tree-vrp"),
            unroll_loops: rest.iter().any(|a| a == "--unroll-loops"),
            strict_aliasing: true,
        },
    }
}

fn compile_cmd(rest: &[String]) -> ExitCode {
    let Some(file) = positional(rest) else {
        eprintln!("compile: missing FILE");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compile: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiler = Compiler::new(parse_profile(rest), parse_options(rest, 2));
    // Ride the content-addressed query engine: a one-shot CLI compile
    // needs no seed slot, and repeated declarations (across -O variants,
    // or within one file) serve from warm memos.
    let r = metamut_simcomp::QueryCache::default().compile_program(&compiler, &src);
    println!(
        "{} {} → {:?} ({} branches covered)",
        compiler.profile().name(),
        compiler.options().render(),
        r.outcome,
        r.coverage.count()
    );
    match r.outcome {
        Outcome::Success { .. } => ExitCode::SUCCESS,
        Outcome::Rejected { .. } => ExitCode::FAILURE,
        Outcome::Crash(_) => ExitCode::from(101),
    }
}

fn generate(rest: &[String]) -> ExitCode {
    let n: usize = opt(rest, "-n").and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = opt(rest, "-s").and_then(|s| s.parse().ok()).unwrap_or(7);
    std::panic::set_hook(Box::new(|_| {}));
    let mut mm = metamut::core::default_framework(seed);
    let records = mm.run_many(n, seed ^ 0xFACE);
    let _ = std::panic::take_hook();
    for r in &records {
        match (&r.status, &r.blueprint) {
            (metamut::core::GenerationStatus::Valid, Some(bp)) => println!(
                "VALID   {:<30} behavior={:<28} tokens={} rounds={}",
                bp.name,
                bp.behavior,
                r.cost.tokens_total(),
                r.cost.qa_total()
            ),
            (status, _) => println!("INVALID {status:?}"),
        }
    }
    let valid = records.iter().filter(|r| r.status.is_valid()).count();
    println!("{valid}/{n} valid mutators generated");
    ExitCode::SUCCESS
}

/// `metamut analyze FILE [--json]` — runs the dataflow UB/validity analyzer
/// over one C file and reports every finding, either as a JSON array or as
/// human-readable diagnostics with caret-underlined source spans. Exits 0
/// when no UB was found (lints alone don't fail the run), 1 on UB, 2 on a
/// parse error.
fn analyze_cmd(rest: &[String]) -> ExitCode {
    use metamut::analyze::analyze_source;
    use metamut_lang::SourceFile;
    let Some(file) = positional(rest) else {
        eprintln!("analyze: missing FILE");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("analyze: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = SourceFile::new(file.as_str(), src.as_str());
    let findings = match analyze_source(&src) {
        Ok(f) => f,
        Err(diags) => {
            for d in diags.iter() {
                eprintln!("{}", d.render(&source));
            }
            return ExitCode::from(2);
        }
    };
    if rest.iter().any(|a| a == "--json") {
        match serde_json::to_string_pretty(&findings) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("analyze: cannot serialize findings: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if findings.is_empty() {
        println!("{file}: no findings");
    } else {
        for f in &findings {
            let pos = source.line_col(f.span.lo);
            println!(
                "{file}:{pos}: {} [{}] in '{}': {}",
                f.severity, f.analysis, f.function, f.message
            );
            // Interprocedural findings: show the call path, outermost
            // call site first, down to where the defect actually fires.
            for link in &f.chain {
                let at = source.line_col(link.span.lo);
                println!("  via '{}' at {file}:{at}", link.function);
            }
            // Caret-underline the finding's span on its first source line.
            if let Some(line) = source.line_span(pos.line) {
                let text = source.snippet(line);
                let start = (f.span.lo - line.lo) as usize;
                let width = (f.span.hi.min(line.hi).saturating_sub(f.span.lo)).max(1) as usize;
                println!("  {text}");
                println!("  {:start$}{}", "", "^".repeat(width));
            }
        }
        let ub = findings.iter().filter(|f| f.is_ub()).count();
        println!(
            "{file}: {} finding(s), {ub} UB, {} lint",
            findings.len(),
            findings.len() - ub
        );
    }
    if findings.iter().any(|f| f.is_ub()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn reduce_cmd(rest: &[String]) -> ExitCode {
    use metamut::reduce::{reduce, ReduceConfig, ReductionOracle};
    let Some(file) = positional(rest) else {
        eprintln!("reduce: missing FILE");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("reduce: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = parse_profile(rest);
    let options = parse_options(rest, 2);
    let Some(oracle) = ReductionOracle::for_witness(profile, options.clone(), &src) else {
        eprintln!(
            "reduce: {file} does not crash {} {}",
            profile.name(),
            options.render()
        );
        return ExitCode::FAILURE;
    };
    let result = reduce(&oracle, &src, &ReduceConfig::default());
    eprintln!(
        "reduce: {} → {} bytes ({:.0}%), {} oracle calls, {} rounds",
        result.original_bytes,
        result.reduced_bytes,
        result.ratio() * 100.0,
        result.oracle_calls,
        result.rounds
    );
    for (pass, bytes) in &result.pass_bytes {
        eprintln!("  {pass:<16} -{bytes} bytes");
    }
    print!("{}", result.reduced);
    if !result.reduced.ends_with('\n') {
        println!();
    }
    ExitCode::SUCCESS
}

fn triage_cmd(rest: &[String]) -> ExitCode {
    use metamut::fuzzing::campaign::CrashRecord;
    use metamut::reduce::{triage_crashes, TriageConfig};
    let files = positionals(rest);
    if files.is_empty() {
        eprintln!("triage: missing FILE...");
        return ExitCode::from(2);
    }
    let profile = parse_profile(rest);
    let options = parse_options(rest, 2);
    let compiler = Compiler::new(profile, options.clone());
    let mut records = Vec::new();
    for file in files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("triage: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match compiler.compile(&src).outcome.crash() {
            Some(info) => records.push(CrashRecord {
                signature: info.signature(),
                info: info.clone(),
                first_iteration: records.len(),
                witness: src,
            }),
            None => eprintln!(
                "triage: {file} does not crash {} {} — skipped",
                profile.name(),
                options.render()
            ),
        }
    }
    if records.is_empty() {
        eprintln!("triage: no crashing inputs");
        return ExitCode::FAILURE;
    }
    let workers: usize = opt(rest, "-w")
        .or_else(|| opt(rest, "--workers"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let config = TriageConfig {
        workers,
        ..Default::default()
    };
    let mut report = triage_crashes(&records, profile, &options, &config);
    let out = opt(rest, "--out");
    let append = rest.iter().any(|a| a == "--append");
    if append {
        // Fold a previous run's triage.json (if any) into this report:
        // bugs dedup by signature, keeping the smallest reduced witness.
        let Some(dir) = out.as_deref() else {
            eprintln!("triage: --append requires --out DIR");
            return ExitCode::from(2);
        };
        let path = std::path::Path::new(dir).join("triage.json");
        if path.exists() {
            let merged = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    let mut base = metamut::reduce::TriageReport::from_json(&text)?;
                    base.merge(report.clone())?;
                    Ok(base)
                });
            match merged {
                Ok(m) => {
                    eprintln!(
                        "triage: appended to {} ({} bug(s) total)",
                        path.display(),
                        m.bugs.len()
                    );
                    report = m;
                }
                Err(e) => {
                    eprintln!("triage: cannot append to {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some(dir) = out.as_deref() {
        emit_telemetry_snapshot(dir, append);
    }
    emit_triage(&report, out.as_deref())
}

/// Writes (or, on `--append`, merges into) `DIR/telemetry.json` — the
/// telemetry snapshot riding along with a triage output directory so
/// multi-run campaigns accumulate counters (sums) and gauges (maxima)
/// alongside the merged bug list. No-op when telemetry is disabled.
fn emit_telemetry_snapshot(dir: &str, append: bool) {
    let telemetry = metamut_telemetry::handle();
    if !telemetry.enabled() {
        return;
    }
    let mut snapshot = telemetry.snapshot();
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("triage: cannot create {dir}: {e}");
        return;
    }
    let path = std::path::Path::new(dir).join("telemetry.json");
    if append && path.exists() {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                serde_json::from_str::<metamut_telemetry::Snapshot>(&text)
                    .map_err(|e| format!("malformed snapshot: {e}"))
            }) {
            Ok(previous) => snapshot.merge(&previous),
            Err(e) => {
                eprintln!("triage: cannot merge {}: {e}", path.display());
                return;
            }
        }
    }
    match serde_json::to_string_pretty(&snapshot) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("triage: cannot write {}: {e}", path.display());
            } else {
                eprintln!("triage: wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("triage: cannot serialize telemetry snapshot: {e}"),
    }
}

/// `metamut status ADDR [PATH]` — one-shot client for the live status
/// endpoint: fetches PATH (default `/metrics`) and prints the body.
fn status_cmd(rest: &[String]) -> ExitCode {
    let mut args = positionals(rest).into_iter();
    let Some(addr) = args.next() else {
        eprintln!("status: missing ADDR (e.g. 127.0.0.1:8433)");
        return ExitCode::from(2);
    };
    let path = rest
        .iter()
        .find(|a| a.starts_with('/'))
        .map(|s| s.as_str())
        .unwrap_or("/metrics");
    match metamut_telemetry::fetch(addr, path) {
        Ok(body) => {
            print!("{body}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("status: {addr}{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `metamut report` — joins a telemetry snapshot, a time-series JSONL,
/// and a triage JSON into one markdown campaign report.
fn report_cmd(rest: &[String]) -> ExitCode {
    let snapshot = match opt(rest, "--snapshot") {
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                serde_json::from_str::<metamut_telemetry::Snapshot>(&text)
                    .map_err(|e| format!("malformed snapshot: {e}"))
            }) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => metamut_telemetry::Snapshot::default(),
    };
    let series = match opt(rest, "--timeseries") {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => metamut_telemetry::parse_jsonl(&text),
            Err(e) => {
                eprintln!("report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Vec::new(),
    };
    let triage = match opt(rest, "--triage") {
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| metamut::reduce::TriageReport::from_json(&text))
        {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("report: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if opt(rest, "--snapshot").is_none()
        && opt(rest, "--timeseries").is_none()
        && opt(rest, "--triage").is_none()
    {
        eprintln!("report: nothing to report (pass --snapshot, --timeseries, and/or --triage)");
        return ExitCode::from(2);
    }
    let md = metamut::report::campaign_report(&snapshot, &series, triage.as_ref());
    match opt(rest, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, md) {
                eprintln!("report: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("report: wrote {path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{md}");
            ExitCode::SUCCESS
        }
    }
}

/// Prints a triage report (markdown to stdout), optionally also writing
/// `triage.json` and `triage.md` into a directory.
fn emit_triage(report: &metamut::reduce::TriageReport, out_dir: Option<&str>) -> ExitCode {
    if let Some(dir) = out_dir {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("triage: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (name, contents) in [
            ("triage.json", report.to_json()),
            ("triage.md", report.to_markdown()),
        ] {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("triage: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("triage: wrote {}", path.display());
        }
    } else {
        print!("{}", report.to_markdown());
    }
    ExitCode::SUCCESS
}

/// `metamut serve` — runs the multi-tenant fuzzing daemon until SIGTERM,
/// SIGINT, or a client `shutdown` command, then checkpoints in-flight
/// campaigns into the store so the next `metamut serve --store DIR`
/// resumes them.
fn serve_cmd(rest: &[String]) -> ExitCode {
    use metamut_serve::{Daemon, DaemonConfig};
    let defaults = DaemonConfig::default();
    let config = DaemonConfig {
        store: opt(rest, "--store")
            .map(std::path::PathBuf::from)
            .unwrap_or(defaults.store),
        addr: opt(rest, "--addr").unwrap_or(defaults.addr),
        http_addr: opt(rest, "--http"),
        workers: opt(rest, "-w")
            .or_else(|| opt(rest, "--workers"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.workers),
        slice: opt(rest, "--slice")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.slice),
        checkpoint_every: opt(rest, "--checkpoint-every")
            .and_then(|s| s.parse().ok())
            .unwrap_or(defaults.checkpoint_every),
    };
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve: cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serve: protocol at {} (store {})",
        daemon.local_addr(),
        daemon.store_root().display()
    );
    if let Some(http) = daemon.http_addr() {
        eprintln!("serve: observatory at http://{http}/");
    }
    if let Some(path) = opt(rest, "--addr-out") {
        if let Err(e) = std::fs::write(&path, daemon.local_addr().to_string()) {
            eprintln!("serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    daemon.run_until_shutdown();
    eprintln!("serve: stopped");
    ExitCode::SUCCESS
}

/// `metamut submit ADDR <fuzz|analyze|reduce|triage> [FILE...]` — submits
/// one job to a running daemon; `--wait` blocks for the result document.
fn submit_cmd(rest: &[String]) -> ExitCode {
    use serde_json::json;
    let pos = positionals(rest);
    let (Some(addr), Some(verb)) = (pos.first().copied(), pos.get(1).copied()) else {
        eprintln!("submit: usage: metamut submit ADDR <fuzz|analyze|reduce|triage> [FILE...]");
        return ExitCode::from(2);
    };
    let files = &pos[2..];
    let read = |file: &String| {
        std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))
    };
    let profile = match parse_profile(rest) {
        Profile::Clang => "clang",
        _ => "gcc",
    };
    let opt_level: u8 = opt(rest, "-O").and_then(|s| s.parse().ok()).unwrap_or(2);
    let request = match verb.as_str() {
        "fuzz" => json!({
            "cmd": "fuzz",
            "iterations": (opt(rest, "-i").and_then(|s| s.parse::<u64>().ok()).unwrap_or(500)),
            "seed": (opt(rest, "-s").and_then(|s| s.parse::<u64>().ok()).unwrap_or(7)),
            "profile": profile,
            "opt_level": opt_level,
            "reduce": (rest.iter().any(|a| a == "--reduce")),
        }),
        "analyze" | "reduce" => {
            let Some(file) = files.first() else {
                eprintln!("submit {verb}: missing FILE");
                return ExitCode::from(2);
            };
            match read(file) {
                Ok(program) => json!({
                    "cmd": (verb.as_str()),
                    "program": program,
                    "profile": profile,
                    "opt_level": opt_level,
                }),
                Err(e) => {
                    eprintln!("submit: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "triage" => {
            if files.is_empty() {
                eprintln!("submit triage: missing FILE...");
                return ExitCode::from(2);
            }
            let mut programs = Vec::new();
            for file in files {
                match read(file) {
                    Ok(p) => programs.push(p),
                    Err(e) => {
                        eprintln!("submit: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            json!({
                "cmd": "triage",
                "programs": programs,
                "profile": profile,
                "opt_level": opt_level,
            })
        }
        other => {
            eprintln!("submit: unknown job kind {other:?}");
            return ExitCode::from(2);
        }
    };
    let mut client = match metamut_serve::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("submit: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.submit(&request) {
        Ok(id) => {
            eprintln!("submit: job {id} queued at {addr}");
            if rest.iter().any(|a| a == "--wait") {
                match client.wait(id) {
                    Ok(job) => match serde_json::to_string_pretty(&job) {
                        Ok(text) => println!("{text}"),
                        Err(e) => {
                            eprintln!("submit: cannot render job {id}: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    Err(e) => {
                        eprintln!("submit: wait for job {id} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("submit: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `metamut jobs ADDR [ID]` — lists a daemon's jobs, shows one record,
/// prints daemon status (`--status`), or cancels a job (`--cancel ID`).
fn jobs_cmd(rest: &[String]) -> ExitCode {
    let pos = positionals(rest);
    let Some(addr) = pos.first() else {
        eprintln!("jobs: missing ADDR (e.g. 127.0.0.1:9933)");
        return ExitCode::from(2);
    };
    let mut client = match metamut_serve::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("jobs: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let render = |value: &serde::Value| match serde_json::to_string_pretty(value) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jobs: cannot render response: {e}");
            ExitCode::FAILURE
        }
    };
    if let Some(id) = opt(rest, "--cancel").and_then(|s| s.parse::<u64>().ok()) {
        return match client.cancel(id) {
            Ok(status) => {
                println!("job {id}: {status}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("jobs: cancel {id}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if rest.iter().any(|a| a == "--status") {
        return match client.status() {
            Ok(status) => render(&status),
            Err(e) => {
                eprintln!("jobs: status: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(id) = pos.get(1).and_then(|s| s.parse::<u64>().ok()) {
        return match client.job(id) {
            Ok(job) => render(&job),
            Err(e) => {
                eprintln!("jobs: job {id}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match client.jobs() {
        Ok(rows) => {
            println!(
                "{:>5}  {:<8}  {:<10}  {:>16}",
                "id", "kind", "status", "progress"
            );
            for row in &rows {
                let field = |k: &str| row.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                let text = |k: &str| {
                    row.get(k)
                        .and_then(|v| v.as_str())
                        .unwrap_or_default()
                        .to_string()
                };
                println!(
                    "{:>5}  {:<8}  {:<10}  {:>7}/{:<8}",
                    field("id"),
                    text("kind"),
                    text("status"),
                    field("consumed"),
                    field("total"),
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jobs: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fuzz(rest: &[String]) -> ExitCode {
    let iterations: usize = opt(rest, "-i").and_then(|s| s.parse().ok()).unwrap_or(500);
    let seed: u64 = opt(rest, "-s").and_then(|s| s.parse().ok()).unwrap_or(7);
    // Default to one worker: the serial engine is bit-for-bit reproducible
    // for a given seed. `-w 0` asks for one worker per CPU.
    let workers: usize = opt(rest, "-w")
        .or_else(|| opt(rest, "--workers"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let seeds: Vec<String> = metamut::fuzzing::corpus::seed_corpus()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let profile = parse_profile(rest);
    let options = CompileOptions::o2();
    let compiler = Compiler::new(profile, options.clone());
    // One query database spans the campaign and (with --reduce) triage,
    // so reduction oracles start from the memos fuzzing already built.
    let query_db = Arc::new(metamut_simcomp::QueryDb::new());
    let config = CampaignConfig {
        iterations,
        seed,
        sample_every: (iterations / 10).max(1),
        workers,
        dedup: !rest.iter().any(|a| a == "--no-dedup"),
        incremental: !rest.iter().any(|a| a == "--no-incremental"),
        ub_filter: !rest.iter().any(|a| a == "--no-ub-filter"),
        interproc_gate: !rest.iter().any(|a| a == "--no-interproc-gate"),
        query_cache_cap: query_cache_cap(rest),
        query_db: Some(Arc::clone(&query_db)),
        ..Default::default()
    };
    // Live observatory: serve /metrics, /timeseries, and /spans over HTTP
    // for the duration of the campaign. Binding enables the global
    // telemetry pipeline (plus span and series recording) so there is
    // something to serve even without --telemetry.
    let _status_server = match opt(rest, "--status-addr") {
        Some(addr) => {
            let telemetry = metamut_telemetry::handle().clone();
            telemetry.set_enabled(true);
            match metamut_telemetry::StatusServer::bind(&addr, telemetry) {
                Ok(server) => {
                    eprintln!("fuzz: status endpoint at http://{}/", server.local_addr());
                    // With `--status-addr 127.0.0.1:0` the kernel picks the
                    // port; --status-addr-out FILE tells scripts (and CI)
                    // where the endpoint actually landed.
                    if let Some(path) = opt(rest, "--status-addr-out") {
                        if let Err(e) = std::fs::write(&path, server.local_addr().to_string()) {
                            eprintln!("fuzz: cannot write {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Some(server)
                }
                Err(e) => {
                    eprintln!("fuzz: cannot bind status endpoint {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let lint_penalty = !rest.iter().any(|a| a == "--no-lint-penalty");
    let report = if config.resolved_workers() > 1 {
        let registry = Arc::new(metamut::mutators::full_registry());
        run_parallel_campaign(
            &seeds,
            |_w, shard| MuCFuzz::new("uCFuzz", registry.clone(), shard).lint_penalty(lint_penalty),
            &compiler,
            &config,
        )
    } else {
        let mut fuzzer = MuCFuzz::new(
            "uCFuzz",
            Arc::new(metamut::mutators::full_registry()),
            seeds.iter().cloned(),
        )
        .lint_penalty(lint_penalty);
        run_campaign(&mut fuzzer, &compiler, &config)
    };
    let dedup_note = report
        .dedup
        .map(|d| format!(", {:.0}% dedup hits", 100.0 * d.hit_rate()))
        .unwrap_or_default();
    println!(
        "{} on {}: {} iterations × {} workers, {} branches covered, {:.1}% compilable, {} unique crashes{}",
        report.fuzzer,
        report.compiler,
        report.mutants.total,
        report.workers,
        report.final_coverage,
        report.mutants.ratio(),
        report.crashes.len(),
        dedup_note
    );
    for c in &report.crashes {
        println!(
            "  crash at iter {}: {} [{} / {}] frames {}::{}",
            c.first_iteration,
            c.info.bug_id,
            c.info.stage,
            c.info.kind.label(),
            c.info.frames[0],
            c.info.frames[1]
        );
    }
    if rest.iter().any(|a| a == "--reduce") && !report.crashes.is_empty() {
        use metamut::reduce::{triage_crashes, TriageConfig};
        let config = TriageConfig {
            workers,
            query_db: Some(Arc::clone(&query_db)),
            ..Default::default()
        };
        let triage = triage_crashes(&report.crashes, profile, &options, &config);
        println!(
            "triage: {} bug(s), {} → {} witness bytes, {} oracle calls",
            triage.bugs.len(),
            triage.total_bytes_before,
            triage.total_bytes_after,
            triage.total_oracle_calls
        );
        for b in &triage.bugs {
            println!(
                "  {}: {} → {} bytes ({:.0}%), {} oracle calls",
                b.bug_id,
                b.original_bytes,
                b.reduced_bytes,
                b.reduction_ratio * 100.0,
                b.oracle_calls
            );
        }
        return emit_triage(&triage, opt(rest, "--reduce-out").as_deref());
    }
    ExitCode::SUCCESS
}
