//! # metamut
//!
//! Umbrella crate for the MetaMut reproduction: re-exports every subsystem
//! so downstream users can depend on one crate.
//!
//! - [`lang`] — the C-subset front end (lexer, parser, sema, rewriter).
//! - [`analyze`] — the dataflow UB/validity analyzer and campaign gate.
//! - [`muast`] — the μAST API layer and the `Mutator` trait.
//! - [`mutators`] — the library of semantic-aware mutation operators.
//! - [`llm`] — the deterministic simulated language model.
//! - [`core`] — the MetaMut framework (invent → synthesize → validate).
//! - [`simcomp`] — the instrumented compiler under test.
//! - [`fuzzing`] — μCFuzz, the macro fuzzer and the four baselines.
//! - [`reduce`] — crash triage and signature-preserving reduction.
//! - [`serve`] — the multi-tenant fuzzing daemon and its protocol client.
//! - [`report`] — post-campaign markdown reports with wall-time attribution.
//!
//! ```
//! use metamut::prelude::*;
//!
//! let registry = mutators::full_registry();
//! let ret2v = registry.get("ModifyFunctionReturnTypeToVoid").unwrap();
//! let out = mutate_source(
//!     ret2v.mutator.as_ref(),
//!     "int f(void) { return 1; } int main(void) { return f(); }",
//!     3,
//! ).unwrap();
//! assert!(out.mutant().unwrap().contains("void f(void)"));
//! ```

#![warn(missing_docs)]

pub mod report;

pub use metamut_analyze as analyze;
pub use metamut_core as core;
pub use metamut_fuzzing as fuzzing;
pub use metamut_lang as lang;
pub use metamut_llm as llm;
pub use metamut_muast as muast;
pub use metamut_mutators as mutators;
pub use metamut_reduce as reduce;
pub use metamut_serve as serve;
pub use metamut_simcomp as simcomp;

/// The most commonly used items in one import.
pub mod prelude {
    pub use metamut_core::{compile_blueprint, MetaMut};
    pub use metamut_fuzzing::{run_campaign, CampaignConfig, TestGenerator};
    pub use metamut_lang::{compile, compile_check, parse};
    pub use metamut_llm::SimLlm;
    pub use metamut_muast::{mutate_source, MutCtx, MutationOutcome, Mutator};
    pub use metamut_mutators as mutators;
    pub use metamut_simcomp::{CompileOptions, Compiler, Outcome, Profile};
}
