//! Post-campaign reporting: joins the telemetry snapshot, the sampled
//! time-series, and (optionally) the triage output into one markdown
//! document with a wall-time attribution table and a coverage sparkline.
//!
//! Attribution works off the `<span>_ms` histograms the span guards
//! record: the campaign's accounted wall-time is the per-worker `shard`
//! span total plus post-campaign `triage` time, split across the
//! per-iteration stage spans with an explicit `other` remainder row so
//! the percentages always sum to 100 (modulo rounding).

use metamut_reduce::TriageReport;
use metamut_telemetry::{SeriesPoint, Snapshot};

/// One row of the wall-time attribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Stage / pass / mutator label.
    pub name: String,
    /// Accounted milliseconds.
    pub ms: f64,
    /// Share of the table's denominator, in percent.
    pub percent: f64,
}

/// The per-iteration stage spans that partition a shard's loop body.
/// (`iteration` wraps them all, so it is excluded to avoid double
/// counting; `triage` runs after the campaign and is added separately.)
const STAGE_SPANS: [&str; 4] = ["mutate", "ub_filter", "compile_incremental", "compile_cold"];

fn hist_sum(snapshot: &Snapshot, name: &str) -> f64 {
    snapshot.histograms.get(name).map(|h| h.sum).unwrap_or(0.0)
}

/// Collects every counter named `family{label}` into `(label, value)`
/// rows in registry (sorted-name) order.
fn labeled_counter_values(snapshot: &Snapshot, family: &str) -> Vec<(String, u64)> {
    let open = format!("{family}{{");
    snapshot
        .counters
        .iter()
        .filter_map(|(name, v)| {
            let label = name.strip_prefix(&open)?.strip_suffix('}')?;
            Some((label.to_string(), *v))
        })
        .collect()
}

/// Sums every histogram named `prefix{...}` and returns `(label, sum)`
/// rows in registry (sorted-name) order.
fn labeled_hist_sums(snapshot: &Snapshot, prefix: &str) -> Vec<(String, f64)> {
    let open = format!("{prefix}{{");
    snapshot
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            let label = name.strip_prefix(&open)?.strip_suffix('}')?;
            Some((label.to_string(), h.sum))
        })
        .collect()
}

/// The top-level wall-time attribution: one row per pipeline stage plus
/// an `other` remainder, in percent of the campaign's accounted
/// wall-time (worker `shard` span totals plus post-campaign `triage`
/// time). The percentages sum to 100 by construction.
pub fn attribution(snapshot: &Snapshot) -> Vec<AttributionRow> {
    let triage_ms = hist_sum(snapshot, "triage_ms");
    let worker_ms = {
        let shards = hist_sum(snapshot, "shard_ms");
        if shards > 0.0 {
            shards
        } else {
            hist_sum(snapshot, "campaign_ms")
        }
    };
    let stages: Vec<(String, f64)> = STAGE_SPANS
        .iter()
        .map(|s| (s.to_string(), hist_sum(snapshot, &format!("{s}_ms"))))
        .collect();
    let busy: f64 = stages.iter().map(|(_, ms)| ms).sum::<f64>() + triage_ms;
    // The engine's own loop overhead (scheduling, sampling, coverage
    // merging) is whatever the stage spans did not cover. Clock skew can
    // make `busy` marginally exceed the shard total; clamp so the table
    // still sums to 100.
    let total = (worker_ms + triage_ms).max(busy);
    let pct = |ms: f64| if total > 0.0 { 100.0 * ms / total } else { 0.0 };
    let mut rows: Vec<AttributionRow> = stages
        .into_iter()
        .chain([("triage".to_string(), triage_ms)])
        .map(|(name, ms)| AttributionRow {
            percent: pct(ms),
            name,
            ms,
        })
        .collect();
    let other = (total - busy).max(0.0);
    rows.push(AttributionRow {
        name: "other".to_string(),
        ms: other,
        percent: pct(other),
    });
    rows
}

/// Renders `values` as a unicode sparkline (▁▂▃▄▅▆▇█), scaled to the
/// series' own min..max; a flat series renders as all-▁.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = values
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), v| (lo.min(*v), hi.max(*v)));
    values
        .iter()
        .map(|v| {
            if max <= min {
                BARS[0]
            } else {
                let t = (v - min) / (max - min);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}

fn push_labeled_table(
    out: &mut String,
    heading: &str,
    columns: &str,
    rows: &[(String, f64)],
    extra: impl Fn(&str) -> String,
) {
    if rows.is_empty() {
        return;
    }
    let total: f64 = rows.iter().map(|(_, ms)| ms).sum();
    let mut sorted: Vec<&(String, f64)> = rows.iter().collect();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out.push_str(heading);
    out.push_str(columns);
    for (label, ms) in sorted {
        let percent = if total > 0.0 { 100.0 * ms / total } else { 0.0 };
        out.push_str(&format!(
            "| {label} | {} | {percent:.1}% |{}\n",
            fmt_ms(*ms),
            extra(label)
        ));
    }
}

/// Assembles the full markdown campaign report.
///
/// `snapshot` drives the attribution tables; `series` (the
/// `timeseries.jsonl` samples) drives the coverage sparkline and the
/// campaign summary line; `triage`, when present, contributes the bug
/// table. Any input may be empty — the report degrades section by
/// section rather than failing.
pub fn campaign_report(
    snapshot: &Snapshot,
    series: &[SeriesPoint],
    triage: Option<&TriageReport>,
) -> String {
    let mut out = String::from("# Campaign report\n\n");

    // ---- Summary line from the last sample ----
    if let Some(last) = series.last() {
        out.push_str(&format!(
            "{} execs, {} branches covered, {} corpus seeds, {} crash(es); \
             {:.0} execs/sec, {:.0}% dedup hits, {:.0}% incremental hits, \
             {:.0}% UB-filtered.\n\n",
            last.execs,
            last.covered,
            last.corpus,
            last.crashes,
            last.execs_per_sec,
            100.0 * last.dedup_hit_rate,
            100.0 * last.incremental_hit_rate,
            100.0 * last.ub_filter_rate,
        ));
    }

    // ---- Coverage sparkline ----
    if !series.is_empty() {
        let covered: Vec<f64> = series.iter().map(|p| p.covered as f64).collect();
        out.push_str(&format!(
            "Coverage over time: `{}` ({} → {} branches, {} samples)\n\n",
            sparkline(&covered),
            series.first().map(|p| p.covered).unwrap_or(0),
            series.last().map(|p| p.covered).unwrap_or(0),
            series.len(),
        ));
    }

    // ---- Wall-time attribution ----
    let rows = attribution(snapshot);
    let accounted: f64 = rows.iter().map(|r| r.ms).sum();
    if accounted > 0.0 {
        out.push_str("## Wall-time attribution\n\n");
        out.push_str("| stage | time | share |\n|---|---|---|\n");
        for r in &rows {
            out.push_str(&format!(
                "| {} | {} | {:.1}% |\n",
                r.name,
                fmt_ms(r.ms),
                r.percent
            ));
        }
        out.push_str(&format!(
            "\nAccounted wall-time: {}.\n\n",
            fmt_ms(accounted)
        ));
    }

    // ---- Per-reduction-pass attribution ----
    push_labeled_table(
        &mut out,
        "## Reduction passes\n\n",
        "| pass | time | share | bytes removed |\n|---|---|---|---|\n",
        &labeled_hist_sums(snapshot, "reduce_pass_ms"),
        |label| {
            let bytes = snapshot
                .counters
                .get(&metamut_telemetry::labeled("reduce_bytes_removed", label))
                .copied()
                .unwrap_or(0);
            format!(" {bytes} |")
        },
    );
    if out.ends_with("|\n") {
        out.push('\n');
    }

    // ---- Per-mutator attribution ----
    push_labeled_table(
        &mut out,
        "## Mutators\n\n",
        "| mutator | time | share | attempts | applied |\n|---|---|---|---|---|\n",
        &labeled_hist_sums(snapshot, "mutator_ms"),
        |label| {
            let get = |family: &str| {
                snapshot
                    .counters
                    .get(&metamut_telemetry::labeled(family, label))
                    .copied()
                    .unwrap_or(0)
            };
            format!(
                " {} | {} |",
                get("mutator_attempts"),
                get("mutator_applied")
            )
        },
    );
    if out.ends_with("|\n") {
        out.push('\n');
    }

    // ---- Query-engine attribution ----
    let hits = labeled_counter_values(snapshot, "query_hits");
    let recomputes = labeled_counter_values(snapshot, "query_recomputes");
    if !hits.is_empty() || !recomputes.is_empty() {
        let mut stages: std::collections::BTreeMap<String, (u64, u64)> =
            std::collections::BTreeMap::new();
        for (label, n) in hits {
            stages.entry(label).or_default().0 = n;
        }
        for (label, n) in recomputes {
            stages.entry(label).or_default().1 = n;
        }
        out.push_str(
            "## Query engine

",
        );
        out.push_str(
            "| query | hits | recomputes | hit rate |
|---|---|---|---|
",
        );
        let (mut total_h, mut total_r) = (0u64, 0u64);
        for (label, (h, r)) in &stages {
            total_h += h;
            total_r += r;
            let rate = if h + r > 0 {
                100.0 * *h as f64 / (h + r) as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "| {label} | {h} | {r} | {rate:.1}% |
"
            ));
        }
        let total_rate = if total_h + total_r > 0 {
            100.0 * total_h as f64 / (total_h + total_r) as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "| **total** | {total_h} | {total_r} | {total_rate:.1}% |
"
        ));
        // Cross-seed sharing: memo hits served from a different seed,
        // tenant, or slotless program than the one that computed them.
        let xs: u64 = labeled_counter_values(snapshot, "query_cross_seed_hits")
            .iter()
            .map(|(_, n)| n)
            .sum();
        if xs > 0 {
            let share = if total_h > 0 {
                100.0 * xs as f64 / total_h as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "| cross-seed | {xs} | — | {share:.1}% of hits |
"
            ));
        }
        let scalar = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        out.push_str(&format!(
            "
Early cutoffs: {}; memo evictions: {}; slot evictions: {};              cross-check mismatches: {}; estimated saved wall-time: {}.

",
            scalar("query_early_cutoffs"),
            scalar("query_evictions"),
            scalar("query_slot_evictions"),
            scalar("query_mismatches"),
            fmt_ms(hist_sum(snapshot, "query_saved_ms")),
        ));
    }

    // ---- Histogram latency summary ----
    let with_samples: Vec<(&String, &metamut_telemetry::HistogramSnapshot)> = snapshot
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !with_samples.is_empty() {
        out.push_str("## Latency percentiles\n\n");
        out.push_str("| histogram | samples | p50 | p90 | p99 |\n|---|---|---|---|---|\n");
        for (name, h) in with_samples {
            out.push_str(&format!(
                "| {name} | {} | {:.3} | {:.3} | {:.3} |\n",
                h.count, h.p50, h.p90, h.p99
            ));
        }
        out.push('\n');
    }

    // ---- Triage ----
    if let Some(t) = triage {
        out.push_str(&format!(
            "## Bugs\n\n{} unique bug(s), {} → {} witness bytes, {} oracle calls.\n\n",
            t.bugs.len(),
            t.total_bytes_before,
            t.total_bytes_after,
            t.total_oracle_calls
        ));
        out.push_str("| bug | stage | kind | bytes | first seen |\n|---|---|---|---|---|\n");
        for b in &t.bugs {
            out.push_str(&format!(
                "| {} | {} | {} | {} → {} | iter {} |\n",
                b.bug_id, b.stage, b.kind, b.original_bytes, b.reduced_bytes, b.first_iteration
            ));
        }
        out.push('\n');
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamut_telemetry::Telemetry;

    fn synthetic_snapshot() -> Snapshot {
        let t = Telemetry::new();
        t.set_enabled(true);
        // 1000ms of shard time split: 300 mutate, 200 ub_filter,
        // 250 incremental, 150 cold → 100 other; plus 500ms triage.
        t.observe_hot("shard_ms", 1000.0);
        t.observe_hot("mutate_ms", 300.0);
        t.observe_hot("ub_filter_ms", 200.0);
        t.observe_hot("compile_incremental_ms", 250.0);
        t.observe_hot("compile_cold_ms", 150.0);
        t.observe_hot("triage_ms", 500.0);
        t.observe_hot("reduce_pass_ms{ddmin-decls}", 120.0);
        t.observe_hot("reduce_pass_ms{reprint}", 30.0);
        t.counter_add("reduce_bytes_removed{ddmin-decls}", 400);
        t.observe_hot("mutator_ms{ZeroLiteral}", 12.0);
        t.counter_add("mutator_attempts{ZeroLiteral}", 9);
        t.counter_add("mutator_applied{ZeroLiteral}", 4);
        t.counter_add("query_hits{parse}", 90);
        t.counter_add("query_recomputes{parse}", 10);
        t.counter_add("query_hits{codegen}", 75);
        t.counter_add("query_recomputes{codegen}", 25);
        t.counter_add("query_early_cutoffs", 7);
        t.observe_hot("query_saved_ms", 640.0);
        t.snapshot()
    }

    #[test]
    fn attribution_percentages_sum_to_one_hundred() {
        let rows = attribution(&synthetic_snapshot());
        let total: f64 = rows.iter().map(|r| r.percent).sum();
        assert!(
            (total - 100.0).abs() < 1.0,
            "percentages sum to {total}, want 100±1"
        );
        let other = rows.iter().find(|r| r.name == "other").unwrap();
        assert!((other.ms - 100.0).abs() < 1e-6, "other = {}", other.ms);
        let mutate = rows.iter().find(|r| r.name == "mutate").unwrap();
        assert!((mutate.percent - 20.0).abs() < 1e-6); // 300 of 1500
    }

    #[test]
    fn attribution_clamps_when_stages_exceed_shard_total() {
        let t = Telemetry::new();
        t.set_enabled(true);
        t.observe_hot("shard_ms", 100.0);
        t.observe_hot("mutate_ms", 80.0);
        t.observe_hot("compile_cold_ms", 40.0); // busy 120 > shard 100
        let rows = attribution(&t.snapshot());
        let total: f64 = rows.iter().map(|r| r.percent).sum();
        assert!((total - 100.0).abs() < 1.0, "sum {total}");
        assert_eq!(rows.last().unwrap().ms, 0.0, "no negative remainder");
    }

    #[test]
    fn attribution_of_empty_snapshot_is_all_zero() {
        let rows = attribution(&Snapshot::default());
        assert!(rows.iter().all(|r| r.ms == 0.0));
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[0.0, 7.0]), "▁█");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        assert_eq!(sparkline(&[]), "");
        let line = sparkline(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(line.chars().count(), 8);
        assert!(line.starts_with('▁') && line.ends_with('█'));
    }

    #[test]
    fn report_joins_all_sections() {
        let series = vec![
            SeriesPoint {
                t_us: 1,
                iteration: 10,
                execs: 10,
                covered: 40,
                corpus: 5,
                crashes: 0,
                execs_per_sec: 100.0,
                dedup_hit_rate: 0.0,
                incremental_hit_rate: 0.0,
                ub_filter_rate: 0.0,
            },
            SeriesPoint {
                t_us: 2,
                iteration: 90,
                execs: 90,
                covered: 90,
                corpus: 9,
                crashes: 1,
                execs_per_sec: 120.0,
                dedup_hit_rate: 0.25,
                incremental_hit_rate: 0.5,
                ub_filter_rate: 0.1,
            },
        ];
        let md = campaign_report(&synthetic_snapshot(), &series, None);
        assert!(md.contains("# Campaign report"));
        assert!(md.contains("Coverage over time"));
        assert!(md.contains("## Wall-time attribution"));
        assert!(md.contains("| mutate |"));
        assert!(md.contains("| other |"));
        assert!(md.contains("## Reduction passes"));
        assert!(md.contains("| ddmin-decls |"));
        assert!(md.contains("400 |"));
        assert!(md.contains("## Mutators"));
        assert!(md.contains("| ZeroLiteral |"));
        assert!(md.contains("## Query engine"));
        assert!(md.contains("| parse | 90 | 10 | 90.0% |"));
        assert!(md.contains("| codegen | 75 | 25 | 75.0% |"));
        assert!(md.contains("| **total** | 165 | 35 | 82.5% |"));
        assert!(md.contains("Early cutoffs: 7"));
        assert!(md.contains("saved wall-time: 640.0ms"));
        assert!(md.contains("## Latency percentiles"));
        assert!(!md.contains("## Bugs"), "no triage given");
    }

    #[test]
    fn report_degrades_without_inputs() {
        let md = campaign_report(&Snapshot::default(), &[], None);
        assert!(md.contains("# Campaign report"));
        assert!(!md.contains("## Wall-time attribution"));
    }
}
