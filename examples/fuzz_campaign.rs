//! A scaled-down RQ1 experiment: μCFuzz.s versus the four baselines on the
//! GCC-like compiler, printing coverage, crash counts and compilable ratios.
//!
//! Run with: `cargo run --release --example fuzz_campaign [iterations]`

use metamut_fuzzing::campaign::{run_campaign, CampaignConfig};
use metamut_fuzzing::{all_fuzzers, corpus};
use metamut_simcomp::{CompileOptions, Compiler, Profile};

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("running 6 fuzzers x {iterations} iterations against gcc-sim -O2\n");

    let seeds: Vec<String> = corpus::seed_corpus()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let compiler = Compiler::new(Profile::Gcc, CompileOptions::o2());

    println!(
        "{:>10} | {:>8} | {:>7} | {:>12} | {:>9}",
        "fuzzer", "coverage", "crashes", "compilable %", "pool size"
    );
    println!("{}", "-".repeat(60));
    for mut fuzzer in all_fuzzers(&seeds) {
        let cfg = CampaignConfig {
            iterations,
            seed: 42,
            sample_every: iterations.max(1),
            ..Default::default()
        };
        let report = run_campaign(fuzzer.as_mut(), &compiler, &cfg);
        println!(
            "{:>10} | {:>8} | {:>7} | {:>12.2} | {:>9}",
            report.fuzzer,
            report.final_coverage,
            report.crashes.len(),
            report.mutants.ratio(),
            fuzzer.pool_len(),
        );
        for crash in &report.crashes {
            println!(
                "{:>10} :   crash {} in {} ({})",
                "",
                crash.info.bug_id,
                crash.info.stage,
                crash.info.kind.label()
            );
        }
    }
    println!("\nexpected shape (paper Fig. 7/8): uCFuzz.s and uCFuzz.u lead both columns;");
    println!("AFL++ compiles almost nothing; the generators compile everything but crash nothing.");
}
