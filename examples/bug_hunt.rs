//! A miniature RQ2 field experiment: the macro fuzzer (havoc rounds, flag
//! sampling, shared coverage, parallel workers) hunting bugs in both
//! simulated compilers.
//!
//! Run with: `cargo run --release --example bug_hunt [iterations_per_worker]`

use metamut_fuzzing::corpus;
use metamut_fuzzing::macro_fuzzer::{run_field_experiment, MacroConfig};
use metamut_simcomp::Profile;
use std::sync::Arc;

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    std::panic::set_hook(Box::new(|_| {}));

    let mutators = Arc::new(metamut_mutators::full_registry());
    let seeds: Vec<String> = corpus::seed_corpus()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let config = MacroConfig {
        iterations_per_worker: iterations,
        workers: 4,
        seed: 0xF00D,
        ..Default::default()
    };

    for profile in [Profile::Gcc, Profile::Clang] {
        println!(
            "hunting in {} with {} mutators, {} workers x {} iterations ...",
            profile.name(),
            mutators.len(),
            config.workers,
            config.iterations_per_worker
        );
        let report = run_field_experiment(profile, Arc::clone(&mutators), seeds.clone(), &config);
        println!(
            "  {} compiles, {} covered branches, {} unique bugs:",
            report.total_compiles,
            report.final_coverage,
            report.bugs.len()
        );
        for bug in &report.bugs {
            println!(
                "  - {} [{} / {}] with {}",
                bug.bug_id, bug.stage, bug.consequence, bug.flags
            );
        }
        println!();
    }
    println!("(increase the iteration budget to surface the rarer back-end bugs,");
    println!(" exactly like extending the paper's eight-month campaign)");
}
