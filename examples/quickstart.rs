//! Quickstart: the MetaMut workflow end to end on one mutator.
//!
//! 1. Ask the framework to generate a mutator (invention → synthesis →
//!    validation/refinement against the simulated LLM).
//! 2. Apply the generated mutator to a C program.
//! 3. Feed the mutant to the instrumented compiler and look at the outcome.
//!
//! Run with: `cargo run --example quickstart`

use metamut_core::{GenerationStatus, MetaMut};
use metamut_llm::SimLlm;
use metamut_muast::{mutate_source, MutationOutcome, Mutator};
use metamut_simcomp::{CompileOptions, Compiler, Profile};
use std::sync::Arc;

const PROGRAM: &str = r#"
int r[6];
unsigned foo(int x, int y) {
    if (x > y) goto gt;
    if (x < y) goto lt;
    return 0x01234567;
gt:
    return 0x12345678;
lt:
    return 0xF0123456;
}
int main(void) {
    r[0] = 1;
    return (int)foo(r[0], 2) & 0xff;
}
"#;

fn main() {
    // Crash-defective intermediate mutators panic by design inside the
    // validation loop's catch_unwind; keep the output clean.
    std::panic::set_hook(Box::new(|_| {}));

    // ------------------------------------------------------------------
    // Step 1: generate a mutator with the MetaMut pipeline.
    // ------------------------------------------------------------------
    let registry = Arc::new(metamut_mutators::full_registry());
    let behaviors = registry
        .iter()
        .map(|m| m.mutator.name().to_string())
        .collect();
    let mut metamut = MetaMut::new(SimLlm::new(2024, behaviors), Arc::clone(&registry));

    let record = loop {
        let r = metamut.run_once(rand_seed());
        match r.status {
            GenerationStatus::Valid => break r,
            other => println!("generation attempt ended with {other:?}; retrying"),
        }
    };
    let _ = std::panic::take_hook();
    let blueprint = record.blueprint.expect("valid run has a blueprint");
    println!(
        "generated mutator: {}\n  \"{}\"\n  bound behavior: {}\n  cost: {} tokens over {} QA rounds (~${:.2})\n",
        blueprint.name,
        blueprint.description,
        blueprint.behavior,
        record.cost.tokens_total(),
        record.cost.qa_total(),
        record.cost.dollars(),
    );

    // ------------------------------------------------------------------
    // Step 2: apply it to a program.
    // ------------------------------------------------------------------
    let mutator =
        metamut_core::compile_blueprint(&blueprint, &registry).expect("valid blueprint compiles");
    let mutant = (0..)
        .find_map(|seed| match mutate_source(&mutator, PROGRAM, seed) {
            Ok(MutationOutcome::Mutated(m)) => Some(m),
            _ => None,
        })
        .expect("mutator applies to the demo program");
    println!("--- original ---{PROGRAM}");
    println!("--- mutant (via {}) ---{mutant}", mutator.name());

    // ------------------------------------------------------------------
    // Step 3: compile the mutant with the instrumented compiler.
    // ------------------------------------------------------------------
    let compiler = Compiler::new(Profile::Clang, CompileOptions::o2());
    let result = compiler.compile(&mutant);
    println!(
        "clang-sim {} says: {:?}",
        compiler.options().render(),
        result.outcome
    );
    println!(
        "coverage observed: {} branches across the pipeline",
        result.coverage.count()
    );
}

fn rand_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(7)
}
