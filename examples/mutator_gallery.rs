//! Gallery: apply every registered mutator once to a demo program and show
//! a unified-diff-style before/after of the line it changed.
//!
//! Run with: `cargo run --example mutator_gallery`

use metamut_muast::{mutate_source, MutationOutcome, Provenance};

const DEMO: &str = r#"
struct pair { int first; int second; };
int table[8];
int counter = 0;
static double ratio = 0.5;

int lookup(void) { return table[0] * 2; }

int combine(struct pair *p, int bias) {
    int a = p->first;
    int b = p->second;
    if (a > b) { a += bias; } else { b -= bias; }
    for (int i = 0; i < 4; i++) counter += i;
    while (a > 100) { a /= 2; }
    switch (bias) {
        case 0: a = lookup(); break;
        case 1: a = -a; break;
        default: a = a > 50 ? 50 : a; break;
    }
    table[1] = a;
    a = a + 1;
    a = abs(a);
    return a + b;
}

int main(void) {
    struct pair p;
    p.first = 1;
    p.second = 2;
    return combine(&p, 1) % 256;
}
"#;

fn first_diff_lines(a: &str, b: &str) -> Option<(String, String)> {
    let (mut la, mut lb) = (a.lines(), b.lines());
    loop {
        match (la.next(), lb.next()) {
            (Some(x), Some(y)) if x == y => continue,
            (Some(x), Some(y)) => return Some((x.trim().into(), y.trim().into())),
            (Some(x), None) => return Some((x.trim().into(), "<removed>".into())),
            (None, Some(y)) => return Some(("<added>".into(), y.trim().into())),
            (None, None) => return None,
        }
    }
}

fn main() {
    let registry = metamut_mutators::full_registry();
    println!(
        "{} mutators registered ({} supervised, {} unsupervised)\n",
        registry.len(),
        registry.with_provenance(Provenance::Supervised).len(),
        registry.with_provenance(Provenance::Unsupervised).len(),
    );

    let mut applied = 0;
    for entry in registry.iter() {
        let m = entry.mutator.as_ref();
        let mut shown = false;
        for seed in 0..30 {
            match mutate_source(m, DEMO, seed) {
                Ok(MutationOutcome::Mutated(out)) => {
                    let tag = match entry.provenance {
                        Provenance::Supervised => "M_s",
                        Provenance::Unsupervised => "M_u",
                    };
                    println!("== {} [{}/{}]", m.name(), m.category(), tag);
                    let compiles = metamut_lang::compile_check(&out).is_ok();
                    match first_diff_lines(DEMO, &out) {
                        Some((before, after)) => {
                            println!("   - {before}");
                            println!("   + {after}");
                        }
                        None => println!("   (whole-program rewrite)"),
                    }
                    println!(
                        "   mutant {}\n",
                        if compiles {
                            "compiles"
                        } else {
                            "does NOT compile"
                        }
                    );
                    applied += 1;
                    shown = true;
                    break;
                }
                _ => continue,
            }
        }
        if !shown {
            println!("== {} — not applicable to the demo program\n", m.name());
        }
    }
    println!(
        "{applied}/{} mutators applied to the demo program",
        registry.len()
    );
}
